package dist

import (
	"fmt"
	"sync/atomic"

	"gesp/internal/mpisim"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// FTOptions configure the fault-tolerant distributed driver.
type FTOptions struct {
	Options
	// Fault is the chaos schedule injected into the simulated machine
	// (nil = fault-free). The plan is consumed: its one-shot events
	// (kills, stalls, the drop budget) fire at most once across all
	// restart attempts, which is what lets recovery converge.
	Fault *mpisim.FaultPlan
	// CheckpointEvery is the panel interval between coordinated
	// checkpoints (default 4).
	CheckpointEvery int
	// MaxRestarts bounds recovery attempts before giving up (default 3).
	MaxRestarts int
}

// Recovery reports what fault tolerance cost across all attempts.
type Recovery struct {
	// Attempts is the number of worlds run (1 = no failure); Restarts is
	// Attempts-1.
	Attempts int
	Restarts int
	// Checkpoints committed and their total serialized size.
	Checkpoints     int
	CheckpointBytes int
	// Failures holds the watchdog report of every failed attempt, with
	// Phase filled in ("factorize" or "solve").
	Failures []mpisim.FailureReport
	// DetectLatency is the largest virtual fault-to-detection latency.
	DetectLatency float64
	// ReplayedFlops and ExtraMessages count work and traffic performed
	// in failed attempts beyond the checkpoint the next attempt resumed
	// from — the work the fault destroyed and recovery re-executes.
	ReplayedFlops int64
	ExtraMessages int64
	// AddedSimTime is the virtual time recovery added: for each failure,
	// detection time minus the resumed checkpoint's clock.
	AddedSimTime float64
	// Fingerprint of the final assembled factors (compare against a
	// fault-free run to verify bit-identical recovery).
	Fingerprint uint64
	// FinishSimTime is the virtual time the final successful attempt
	// completed at (max rank clock). Restored clocks resume from the
	// failure detection time, so this is the end-to-end simulated
	// runtime including every recovery delay — compare against a
	// fault-free run's FinishSimTime for total overhead.
	FinishSimTime float64
}

// SolveFT is Solve with fault tolerance: it runs the distributed
// factorization and solve under an optional chaos plan, checkpointing
// completed panel frontiers, and on a watchdog-detected failure
// restarts a fresh world from the last committed checkpoint, replaying
// only the lost tail of the elimination DAG. The recovered
// factorization is bit-identical to a fault-free run (same
// lu.Factors.Fingerprint), because the cut is message-free and the
// block kernels are deterministic.
//
// Pipelining is forcibly disabled: the checkpoint consistency argument
// needs the barrier-aligned non-pipelined schedule.
func SolveFT(a *sparse.CSC, sym *symbolic.Result, b []float64, opts FTOptions) (*Result, *Recovery, error) {
	if opts.Procs <= 0 {
		opts.Procs = 4
	}
	opts.Pipeline = false
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 4
	}
	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 3
	}
	model := mpisim.T3E900()
	if opts.Model != nil {
		model = *opts.Model
	}
	grid := mpisim.NewGrid(opts.Procs)
	if opts.Grid != nil {
		grid = *opts.Grid
	}
	st := BuildStructure(sym)
	thresh := defaultThreshold(a, opts.Threshold)

	rec := &Recovery{}
	var ck *Checkpoint // last committed checkpoint across attempts
	resumeAt := 0.0    // virtual time the next attempt resumes at

	for {
		rec.Attempts++
		world := mpisim.NewWorld(opts.Procs, model)
		if opts.Fault != nil {
			world.InstallFaults(opts.Fault)
		}
		coll := newCkptCollector(opts.Procs)
		out := make([]float64, sym.N)
		snaps := make([][3]mpisim.Snapshot, opts.Procs)
		tinies := make([]int, opts.Procs)
		fails := make([]bool, opts.Procs)
		restoreErrs := make([]error, opts.Procs)
		blockSets := make([]map[int]*Block, opts.Procs)
		var factorDone atomic.Bool

		world.Run(func(r *mpisim.Rank) {
			myR, myC := grid.Coords(r.ID())
			w := &worker{
				r: r, g: grid, st: st, opts: opts.Options,
				myR: myR, myC: myC,
				thresh:    thresh,
				panelDone: make([]bool, st.N),
				ckptEvery: opts.CheckpointEvery,
			}
			own := func(i, j int) bool { return grid.OwnerOfBlock(i, j) == r.ID() }
			if ck != nil {
				blocks, err := restoreBlocks(st, a, own, ck.Blocks[r.ID()])
				if err != nil {
					restoreErrs[r.ID()] = err
					return
				}
				w.blocks = blocks
				w.start = ck.Frontier
				w.tiny = ck.Tinies[r.ID()]
				for k := 0; k < ck.Frontier && k < st.N; k++ {
					w.panelDone[k] = true
				}
				r.Restore(ck.Snaps[r.ID()], resumeAt)
			} else {
				w.blocks = st.ScatterA(a, own)
				// Restart from scratch (failure before the first commit):
				// clocks still resume at the detection time so the
				// finish time stays an end-to-end measurement.
				if resumeAt > 0 {
					r.Restore(mpisim.Snapshot{}, resumeAt)
				}
			}
			w.onCkpt = func(k int) {
				coll.save(r.ID(), k, r.Snap(), encodeBlocks(w.blocks), w.tiny)
			}

			r.Barrier()
			snaps[r.ID()][0] = r.Snap()
			w.factorize()
			r.Barrier()
			factorDone.Store(true)
			snaps[r.ID()][1] = r.Snap()

			xs := w.lowerSolve(b)
			r.Barrier()
			sol := w.upperSolve(xs)
			r.Barrier()
			snaps[r.ID()][2] = r.Snap()

			w.gatherX(sol, out)
			r.Barrier()
			tinies[r.ID()] = w.tiny
			fails[r.ID()] = w.zeroPivot
			blockSets[r.ID()] = w.blocks
		})

		for i, err := range restoreErrs {
			if err != nil {
				return nil, rec, fmt.Errorf("dist: rank %d checkpoint restore: %w", i, err)
			}
		}
		rec.Checkpoints += coll.commits
		rec.CheckpointBytes += coll.bytes

		if f := world.Failure(); f != nil {
			fr := *f
			fr.Phase = "factorize"
			if factorDone.Load() {
				fr.Phase = "solve"
			}
			rec.Failures = append(rec.Failures, fr)
			if lat := fr.DetectedAt - fr.FaultTime; lat > rec.DetectLatency {
				rec.DetectLatency = lat
			}
			// The attempt's work past the checkpoint the next attempt
			// resumes from is lost and will be replayed.
			next := coll.committed
			if next == nil {
				next = ck
			}
			after := world.Snapshots()
			baseClock := 0.0
			for i := range after {
				var bf, bm int64
				if next != nil {
					bf, bm = next.Snaps[i].Flops, next.Snaps[i].Msgs
				}
				rec.ReplayedFlops += after[i].Flops - bf
				rec.ExtraMessages += after[i].Msgs - bm
			}
			if next != nil {
				baseClock = next.MaxClock()
			}
			if d := fr.DetectedAt - baseClock; d > 0 {
				rec.AddedSimTime += d
			}
			if rec.Restarts >= opts.MaxRestarts {
				return nil, rec, fmt.Errorf("dist: unrecovered after %d restarts: %s rank %d in %s phase: %w",
					rec.Restarts, fr.Kind, fr.Rank, fr.Phase, fr.Err)
			}
			rec.Restarts++
			ck = next
			resumeAt = fr.DetectedAt
			continue
		}

		res := &Result{X: out, Grid: grid, SupernodeAv: sym.AvgSupernode()}
		before := make([]mpisim.Snapshot, opts.Procs)
		mid := make([]mpisim.Snapshot, opts.Procs)
		after := make([]mpisim.Snapshot, opts.Procs)
		for i := 0; i < opts.Procs; i++ {
			before[i] = snaps[i][0]
			mid[i] = snaps[i][1]
			after[i] = snaps[i][2]
			res.TinyPivots += tinies[i]
		}
		fs := mpisim.PhaseStats(before, mid)
		ss := mpisim.PhaseStats(mid, after)
		res.Factor = PhaseStats{
			SimTime: fs.Time, Mflops: fs.Mflops(), CommFraction: fs.CommFraction,
			LoadBalance: fs.LoadBalance, Messages: fs.Messages, Volume: fs.Volume,
		}
		res.Solve = PhaseStats{
			SimTime: ss.Time, Mflops: ss.Mflops(), CommFraction: ss.CommFraction,
			LoadBalance: ss.LoadBalance, Messages: ss.Messages, Volume: ss.Volume,
		}
		for i := range fails {
			if fails[i] {
				return res, rec, fmt.Errorf("%w (rank %d)", ErrZeroPivotDist, i)
			}
		}
		for _, s := range world.Snapshots() {
			if s.Clock > rec.FinishSimTime {
				rec.FinishSimTime = s.Clock
			}
		}
		rec.Fingerprint = assembleFingerprint(st, blockSets)
		return res, rec, nil
	}
}

// assembleFingerprint reduces the distributed factors to the serial
// fingerprint used for bit-identical recovery verification.
func assembleFingerprint(st *Structure, blockSets []map[int]*Block) uint64 {
	return AssembleFactors(st, blockSets).Fingerprint()
}
