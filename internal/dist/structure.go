// Package dist implements the paper's Section 3: the distributed-memory
// sparse LU factorization and triangular solves of GESP over a 2-D
// nonuniform block-cyclic layout.
//
// The matrix is partitioned by the supernode boundaries found in the
// symbolic analysis (split at the maximum block size — the paper uses
// 24). Block (I, J) lives on process (I mod PRow, J mod PCol) of the
// process grid. Because no pivoting happens, the complete block skeleton
// — which L and U blocks exist, who owns them, and exactly which
// messages will flow — is known statically before numeric work begins.
// Communication is pruned by the supernodal elimination DAGs (EDAGs): a
// panel of L is sent only to process columns owning a supernode J with
// U(K,J) ≠ 0, rather than to the whole process row.
package dist

import (
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Structure is the replicated static skeleton: every rank holds it (the
// paper runs the symbolic analysis redundantly on every processor).
type Structure struct {
	Sym *symbolic.Result
	N   int // number of supernodes

	// lBlocks[K] lists the off-diagonal L blocks in panel K, ascending by
	// supernode I, with the global rows of each block.
	LBlocks [][]LBlockInfo
	// uBlocks[K] lists the U blocks in block row K, ascending by supernode
	// J, with the global columns present in each block.
	UBlocks [][]UBlockInfo
	// RowL[I] lists the panels J < I with a nonzero block L(I,J): the
	// dependencies of x(I) in the lower triangular solve.
	RowL [][]int
	// ColU[J] lists the block rows K < J with a nonzero block U(K,J): the
	// destinations of x(J) in the upper triangular solve.
	ColU [][]int

	// UpdateTargets[K] lists the (I, J) pairs updated by panel K's outer
	// product, i.e. the EDAG successors of supernode K in block form.
	// (Derived from LBlocks/UBlocks crossing; kept explicit for the
	// receive bookkeeping.)

	// RowProcsNeedingU / ColProcsNeedingL are derived per iteration by the
	// factorization from LBlocks/UBlocks and the grid.
}

// LBlockInfo describes one nonzero off-diagonal block L(I, K).
type LBlockInfo struct {
	I    int   // block row (supernode index), I > K
	Rows []int // global row indices, sorted ascending
}

// UBlockInfo describes one nonzero block U(K, J).
type UBlockInfo struct {
	J    int   // block column (supernode index), J > K
	Cols []int // global column indices present, sorted ascending
}

// BuildStructure derives the block skeleton from the symbolic result.
//
// Layout: every per-panel slice is a view into one of a handful of
// shared slabs sized by a counting pass, instead of append-as-you-go.
// The skeleton is built once but walked by every engine on every panel,
// so the block lists being a few contiguous extents (rather than
// thousands of individually grown slices scattered across the heap)
// keeps the panel loops' metadata reads sequential.
func BuildStructure(sym *symbolic.Result) *Structure {
	ns := sym.NumSupernodes()
	s := &Structure{Sym: sym, N: ns}
	s.LBlocks = make([][]LBlockInfo, ns)
	s.UBlocks = make([][]UBlockInfo, ns)

	// L panels: blocks are runs of equal SupOf in the leading column's
	// strictly-lower pattern (T2 supernodes share it); rows are the
	// pattern entries outside the supernode. Count, then fill.
	nLBlk, nLRow := 0, 0
	for k := 0; k < ns; k++ {
		supEnd := sym.SupPtr[k+1]
		prev := -1
		for _, r := range sym.LColRows(sym.SupPtr[k]) {
			if r < supEnd {
				continue // inside the dense diagonal block
			}
			if bi := sym.SupOf[r]; bi != prev {
				nLBlk++
				prev = bi
			}
			nLRow++
		}
	}
	lblkSlab := make([]LBlockInfo, nLBlk)
	lrowSlab := make([]int, nLRow)
	bPos, rPos := 0, 0
	for k := 0; k < ns; k++ {
		supEnd := sym.SupPtr[k+1]
		bStart := bPos
		for _, r := range sym.LColRows(sym.SupPtr[k]) {
			if r < supEnd {
				continue
			}
			bi := sym.SupOf[r]
			if bPos == bStart || lblkSlab[bPos-1].I != bi {
				lblkSlab[bPos] = LBlockInfo{I: bi}
				bPos++
			}
			lrowSlab[rPos] = r
			rPos++
			cur := &lblkSlab[bPos-1]
			cur.Rows = lrowSlab[rPos-len(cur.Rows)-1 : rPos : rPos]
		}
		if bPos > bStart {
			s.LBlocks[k] = lblkSlab[bStart:bPos:bPos]
		}
	}

	// U blocks: one ascending pass over all columns j; each U row r
	// contributes column j to block (SupOf[r], SupOf[j]). Because
	// columns of a supernode are consecutive and j ascends, each block
	// row's entries arrive already grouped by J and each block's columns
	// arrive ascending — within a block row the appends for one block
	// finish before the next block starts, so per-row slab regions keep
	// every block's columns contiguous. lastCol[K] stamps the last
	// column recorded for block row K, deduplicating within a column.
	// The first sweep counts blocks and columns per block row; the
	// second fills the carved regions.
	lastCol := make([]int, ns)
	lastBlk := make([]int, ns)
	cntBlk := make([]int, ns)
	cntCol := make([]int, ns)
	for k := range lastCol {
		lastCol[k], lastBlk[k] = -1, -1
	}
	for j := 0; j < sym.N; j++ {
		bj := sym.SupOf[j]
		for _, r := range sym.UColRows(j) {
			bk := sym.SupOf[r]
			if bk == bj || lastCol[bk] == j {
				continue // diagonal block, or already recorded for j
			}
			lastCol[bk] = j
			if lastBlk[bk] != bj {
				lastBlk[bk] = bj
				cntBlk[bk]++
			}
			cntCol[bk]++
		}
	}
	blkBase := prefixSum(cntBlk)
	colBase := prefixSum(cntCol)
	ublkSlab := make([]UBlockInfo, blkBase[ns])
	ucolSlab := make([]int, colBase[ns])
	blkFill := make([]int, ns)
	colFill := make([]int, ns)
	for k := range lastCol {
		lastCol[k], lastBlk[k] = -1, -1
	}
	for j := 0; j < sym.N; j++ {
		bj := sym.SupOf[j]
		for _, r := range sym.UColRows(j) {
			bk := sym.SupOf[r]
			if bk == bj || lastCol[bk] == j {
				continue
			}
			lastCol[bk] = j
			if lastBlk[bk] != bj {
				lastBlk[bk] = bj
				c := colBase[bk] + colFill[bk]
				ublkSlab[blkBase[bk]+blkFill[bk]] = UBlockInfo{J: bj, Cols: ucolSlab[c:c:colBase[bk+1]]}
				blkFill[bk]++
			}
			ucolSlab[colBase[bk]+colFill[bk]] = j
			colFill[bk]++
			cur := &ublkSlab[blkBase[bk]+blkFill[bk]-1]
			cur.Cols = cur.Cols[:len(cur.Cols)+1]
		}
	}
	for k := 0; k < ns; k++ {
		if blkFill[k] > 0 {
			s.UBlocks[k] = ublkSlab[blkBase[k] : blkBase[k]+blkFill[k] : blkBase[k+1]]
		}
	}

	// Reverse indexes for the triangular solves, also counted slabs.
	s.RowL = make([][]int, ns)
	s.ColU = make([][]int, ns)
	cntRowL := make([]int, ns)
	cntColU := make([]int, ns)
	for j := 0; j < ns; j++ {
		for _, lb := range s.LBlocks[j] {
			cntRowL[lb.I]++
		}
		for _, ub := range s.UBlocks[j] {
			cntColU[ub.J]++
		}
	}
	rowLBase := prefixSum(cntRowL)
	colUBase := prefixSum(cntColU)
	rowLSlab := make([]int, rowLBase[ns])
	colUSlab := make([]int, colUBase[ns])
	fillRowL := make([]int, ns)
	fillColU := make([]int, ns)
	for j := 0; j < ns; j++ {
		for _, lb := range s.LBlocks[j] {
			rowLSlab[rowLBase[lb.I]+fillRowL[lb.I]] = j
			fillRowL[lb.I]++
		}
		for _, ub := range s.UBlocks[j] {
			colUSlab[colUBase[ub.J]+fillColU[ub.J]] = j
			fillColU[ub.J]++
		}
	}
	for k := 0; k < ns; k++ {
		if cntRowL[k] > 0 {
			s.RowL[k] = rowLSlab[rowLBase[k]:rowLBase[k+1]:rowLBase[k+1]]
		}
		if cntColU[k] > 0 {
			s.ColU[k] = colUSlab[colUBase[k]:colUBase[k+1]:colUBase[k+1]]
		}
	}
	return s
}

// prefixSum returns the exclusive prefix sums of xs, length len(xs)+1.
func prefixSum(xs []int) []int {
	ps := make([]int, len(xs)+1)
	for i, x := range xs {
		ps[i+1] = ps[i] + x
	}
	return ps
}

// SupWidth returns the number of columns of supernode K.
func (s *Structure) SupWidth(k int) int { return s.Sym.SupPtr[k+1] - s.Sym.SupPtr[k] }

// SupCols returns the half-open global column range of supernode K.
func (s *Structure) SupCols(k int) (int, int) { return s.Sym.SupPtr[k], s.Sym.SupPtr[k+1] }

// ScatterA distributes the entries of the permuted matrix into dense
// blocks, returning only the blocks owned by predicate own(I, J). Blocks
// are keyed I*N+J. Every future fill block is allocated (zero-filled) so
// the right-looking updates have a target.
func (s *Structure) ScatterA(a *sparse.CSC, own func(i, j int) bool) map[int]*Block {
	blocks := make(map[int]*Block)
	ns := s.N
	// Allocate diagonal blocks.
	for k := 0; k < ns; k++ {
		if own(k, k) {
			lo, hi := s.SupCols(k)
			rows := rangeInts(lo, hi)
			blocks[k*ns+k] = NewBlock(rows, rows)
		}
	}
	// Allocate L blocks.
	for k := 0; k < ns; k++ {
		lo, hi := s.SupCols(k)
		for _, lb := range s.LBlocks[k] {
			if own(lb.I, k) {
				blocks[lb.I*ns+k] = NewBlock(lb.Rows, rangeInts(lo, hi))
			}
		}
		for _, ub := range s.UBlocks[k] {
			if own(k, ub.J) {
				blocks[k*ns+ub.J] = NewBlock(rangeInts(lo, hi), ub.Cols)
			}
		}
	}
	// Scatter numeric entries of A.
	for j := 0; j < a.Cols; j++ {
		bj := s.Sym.SupOf[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowInd[p]
			bi := s.Sym.SupOf[i]
			if !own(bi, bj) {
				continue
			}
			b := blocks[bi*ns+bj]
			if b == nil {
				// A's pattern is contained in L+U's, so the block exists.
				panic("dist: A entry outside the static block skeleton")
			}
			b.Set(i, j, a.Val[p])
		}
	}
	return blocks
}

func rangeInts(lo, hi int) []int {
	r := make([]int, hi-lo)
	for i := range r {
		r[i] = lo + i
	}
	return r
}
