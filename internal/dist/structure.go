// Package dist implements the paper's Section 3: the distributed-memory
// sparse LU factorization and triangular solves of GESP over a 2-D
// nonuniform block-cyclic layout.
//
// The matrix is partitioned by the supernode boundaries found in the
// symbolic analysis (split at the maximum block size — the paper uses
// 24). Block (I, J) lives on process (I mod PRow, J mod PCol) of the
// process grid. Because no pivoting happens, the complete block skeleton
// — which L and U blocks exist, who owns them, and exactly which
// messages will flow — is known statically before numeric work begins.
// Communication is pruned by the supernodal elimination DAGs (EDAGs): a
// panel of L is sent only to process columns owning a supernode J with
// U(K,J) ≠ 0, rather than to the whole process row.
package dist

import (
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Structure is the replicated static skeleton: every rank holds it (the
// paper runs the symbolic analysis redundantly on every processor).
type Structure struct {
	Sym *symbolic.Result
	N   int // number of supernodes

	// lBlocks[K] lists the off-diagonal L blocks in panel K, ascending by
	// supernode I, with the global rows of each block.
	LBlocks [][]LBlockInfo
	// uBlocks[K] lists the U blocks in block row K, ascending by supernode
	// J, with the global columns present in each block.
	UBlocks [][]UBlockInfo
	// RowL[I] lists the panels J < I with a nonzero block L(I,J): the
	// dependencies of x(I) in the lower triangular solve.
	RowL [][]int
	// ColU[J] lists the block rows K < J with a nonzero block U(K,J): the
	// destinations of x(J) in the upper triangular solve.
	ColU [][]int

	// UpdateTargets[K] lists the (I, J) pairs updated by panel K's outer
	// product, i.e. the EDAG successors of supernode K in block form.
	// (Derived from LBlocks/UBlocks crossing; kept explicit for the
	// receive bookkeeping.)

	// RowProcsNeedingU / ColProcsNeedingL are derived per iteration by the
	// factorization from LBlocks/UBlocks and the grid.
}

// LBlockInfo describes one nonzero off-diagonal block L(I, K).
type LBlockInfo struct {
	I    int   // block row (supernode index), I > K
	Rows []int // global row indices, sorted ascending
}

// UBlockInfo describes one nonzero block U(K, J).
type UBlockInfo struct {
	J    int   // block column (supernode index), J > K
	Cols []int // global column indices present, sorted ascending
}

// BuildStructure derives the block skeleton from the symbolic result.
func BuildStructure(sym *symbolic.Result) *Structure {
	ns := sym.NumSupernodes()
	s := &Structure{Sym: sym, N: ns}
	s.LBlocks = make([][]LBlockInfo, ns)
	s.UBlocks = make([][]UBlockInfo, ns)

	for k := 0; k < ns; k++ {
		lead := sym.SupPtr[k]
		supEnd := sym.SupPtr[k+1]
		// L panel: the leading column's strictly-lower pattern outside the
		// supernode, grouped by block row (T2 supernodes share it).
		var cur *LBlockInfo
		for _, r := range sym.LColRows(lead) {
			if r < supEnd {
				continue // inside the dense diagonal block
			}
			bi := sym.SupOf[r]
			if cur == nil || cur.I != bi {
				s.LBlocks[k] = append(s.LBlocks[k], LBlockInfo{I: bi})
				cur = &s.LBlocks[k][len(s.LBlocks[k])-1]
			}
			cur.Rows = append(cur.Rows, r)
		}
		// U blocks: for every column j, the U rows landing in supernode K
		// determine membership of j's supernode in block row K.
		// Collected below in a single pass over columns.
	}
	// One ascending pass over all columns j: each U row r contributes
	// column j to block (SupOf[r], SupOf[j]). Because columns of a
	// supernode are consecutive and j ascends, each block row's entries
	// arrive already grouped by J and each block's columns arrive
	// ascending — so blocks are built by appending to the tail of
	// UBlocks[K], no maps or sorting needed. lastCol[K] stamps the last
	// column appended to block row K, deduplicating within a column.
	lastCol := make([]int, ns)
	for k := range lastCol {
		lastCol[k] = -1
	}
	for j := 0; j < sym.N; j++ {
		bj := sym.SupOf[j]
		for _, r := range sym.UColRows(j) {
			bk := sym.SupOf[r]
			if bk == bj || lastCol[bk] == j {
				continue // diagonal block, or already recorded for j
			}
			lastCol[bk] = j
			ubs := s.UBlocks[bk]
			if n := len(ubs); n > 0 && ubs[n-1].J == bj {
				ubs[n-1].Cols = append(ubs[n-1].Cols, j)
			} else {
				s.UBlocks[bk] = append(ubs, UBlockInfo{J: bj, Cols: []int{j}})
			}
		}
	}
	// Reverse indexes for the triangular solves.
	s.RowL = make([][]int, ns)
	s.ColU = make([][]int, ns)
	for j := 0; j < ns; j++ {
		for _, lb := range s.LBlocks[j] {
			s.RowL[lb.I] = append(s.RowL[lb.I], j)
		}
		for _, ub := range s.UBlocks[j] {
			s.ColU[ub.J] = append(s.ColU[ub.J], j)
		}
	}
	return s
}

// SupWidth returns the number of columns of supernode K.
func (s *Structure) SupWidth(k int) int { return s.Sym.SupPtr[k+1] - s.Sym.SupPtr[k] }

// SupCols returns the half-open global column range of supernode K.
func (s *Structure) SupCols(k int) (int, int) { return s.Sym.SupPtr[k], s.Sym.SupPtr[k+1] }

// ScatterA distributes the entries of the permuted matrix into dense
// blocks, returning only the blocks owned by predicate own(I, J). Blocks
// are keyed I*N+J. Every future fill block is allocated (zero-filled) so
// the right-looking updates have a target.
func (s *Structure) ScatterA(a *sparse.CSC, own func(i, j int) bool) map[int]*Block {
	blocks := make(map[int]*Block)
	ns := s.N
	// Allocate diagonal blocks.
	for k := 0; k < ns; k++ {
		if own(k, k) {
			lo, hi := s.SupCols(k)
			rows := rangeInts(lo, hi)
			blocks[k*ns+k] = NewBlock(rows, rows)
		}
	}
	// Allocate L blocks.
	for k := 0; k < ns; k++ {
		lo, hi := s.SupCols(k)
		for _, lb := range s.LBlocks[k] {
			if own(lb.I, k) {
				blocks[lb.I*ns+k] = NewBlock(lb.Rows, rangeInts(lo, hi))
			}
		}
		for _, ub := range s.UBlocks[k] {
			if own(k, ub.J) {
				blocks[k*ns+ub.J] = NewBlock(rangeInts(lo, hi), ub.Cols)
			}
		}
	}
	// Scatter numeric entries of A.
	for j := 0; j < a.Cols; j++ {
		bj := s.Sym.SupOf[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowInd[p]
			bi := s.Sym.SupOf[i]
			if !own(bi, bj) {
				continue
			}
			b := blocks[bi*ns+bj]
			if b == nil {
				// A's pattern is contained in L+U's, so the block exists.
				panic("dist: A entry outside the static block skeleton")
			}
			b.Set(i, j, a.Val[p])
		}
	}
	return blocks
}

func rangeInts(lo, hi int) []int {
	r := make([]int, hi-lo)
	for i := range r {
		r[i] = lo + i
	}
	return r
}
