package dist

import (
	"math"

	"gesp/internal/mpisim"
	"gesp/internal/sparse"
)

// Options configure the distributed solver.
type Options struct {
	// Procs is the number of simulated processors (arranged automatically
	// into a near-square 2-D grid, as in the paper).
	Procs int
	// Grid overrides the automatic near-square arrangement, e.g. to
	// compare the 1-D column layout (1×P) against the paper's 2-D layout.
	Grid *mpisim.Grid
	// Model is the machine cost model (default: T3E-900 calibration).
	Model *mpisim.CostModel
	// Pipeline enables the paper's pipelined organization: processes
	// owning block column K+1 factor that panel as soon as the rank-b
	// update reaches it, before updating the rest of the trailing matrix.
	// (The paper measured 10–40% gains on 64 PEs.)
	Pipeline bool
	// EDAGPrune sends panels only to the process rows/columns that the
	// elimination DAGs prove need them, instead of send-to-all (the paper
	// measured 16% fewer messages for AF23560 on 32 PEs).
	EDAGPrune bool
	// ReplaceTinyPivot and Threshold mirror the serial options.
	ReplaceTinyPivot bool
	Threshold        float64
}

// message tags, disjoint per supernode iteration.
const (
	tagDiagForL = iota // factored diagonal block, for L-panel owners
	tagDiagForU        // factored diagonal block, for U-panel owners
	tagLPanel          // L(I,K) blocks, rowwise broadcast
	tagUPanel          // U(K,J) blocks, columnwise broadcast
	tagXSol            // solve: solution subvector x(K)
	tagLSum            // solve: partial inner-product sum
	tagGather          // gathering the solution to rank 0
	numTags
)

func tagOf(typ, k int) int { return k*numTags + typ }

// worker is the per-rank state of the distributed factorization/solve.
type worker struct {
	r      *mpisim.Rank
	g      mpisim.Grid
	st     *Structure
	blocks map[int]*Block
	opts   Options
	myR    int
	myC    int
	thresh float64

	panelDone []bool
	tiny      int
	zeroPivot bool
	// ws is the rank's reusable Schur-update scratch: one per simulated
	// rank keeps the update hot path allocation-free across the whole
	// factorization instead of allocating per block pair.
	ws UpdateScratch

	// Checkpoint/restart hooks (zero values = plain fault-free run).
	// start is the first panel to execute (earlier panels were restored
	// from a checkpoint); ckptEvery > 0 enables a coordinated checkpoint
	// every ckptEvery panels, where onCkpt(k) receives the frontier k
	// right after the barrier that makes the cut consistent. Checkpoints
	// require the non-pipelined schedule: the barrier at the top of
	// iteration k proves every tag-<k message has been consumed and no
	// tag-≥k message exists yet, so the mailboxes are empty at the cut —
	// pipelining pre-runs panel k+1 and breaks that argument.
	start     int
	ckptEvery int
	onCkpt    func(k int)
}

func (w *worker) owner(i, j int) int { return w.g.OwnerOfBlock(i, j) }
func (w *worker) me() int            { return w.r.ID() }

// procColsNeedingL returns the process columns that must receive panel K's
// L blocks: with pruning, the columns owning a supernode J with
// U(K,J) ≠ 0; without, every process column ("send-to-all").
func (w *worker) procColsNeedingL(k int) []int {
	if !w.opts.EDAGPrune {
		return rangeInts(0, w.g.PCol)
	}
	seen := make([]bool, w.g.PCol)
	var cols []int
	for _, ub := range w.st.UBlocks[k] {
		c := ub.J % w.g.PCol
		if !seen[c] {
			seen[c] = true
		}
	}
	for c := 0; c < w.g.PCol; c++ {
		if seen[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// procRowsNeedingU is the columnwise analogue for panel K's U blocks.
func (w *worker) procRowsNeedingU(k int) []int {
	if !w.opts.EDAGPrune {
		return rangeInts(0, w.g.PRow)
	}
	seen := make([]bool, w.g.PRow)
	var rows []int
	for _, lb := range w.st.LBlocks[k] {
		rr := lb.I % w.g.PRow
		if !seen[rr] {
			seen[rr] = true
		}
	}
	for rr := 0; rr < w.g.PRow; rr++ {
		if seen[rr] {
			rows = append(rows, rr)
		}
	}
	return rows
}

// doPanel performs steps (1) and (2) of the paper's Figure 8 for
// iteration K as far as this rank participates: factor the diagonal
// block, compute the L panel and U panel, and launch their broadcasts.
func (w *worker) doPanel(k int) {
	if w.panelDone[k] {
		return
	}
	w.panelDone[k] = true
	ns := w.st.N
	diagOwner := w.owner(k, k)
	var diag *Block

	if diagOwner == w.me() {
		diag = w.blocks[k*ns+k]
		tiny, flops, ok := diag.FactorDiag(w.thresh, w.opts.ReplaceTinyPivot)
		if !ok {
			w.zeroPivot = true
			// Continue with a substituted pivot to avoid deadlock; the
			// driver reports the failure.
			diag.FactorDiag(w.thresh, true)
		}
		w.tiny += tiny
		w.r.Compute(flops)
		// Send down the process column to L-panel owners.
		sentTo := make(map[int]bool)
		for _, lb := range w.st.LBlocks[k] {
			dst := w.owner(lb.I, k)
			if dst != w.me() && !sentTo[dst] {
				sentTo[dst] = true
				w.r.Send(dst, tagOf(tagDiagForL, k), diag, diag.Bytes())
			}
		}
		// Send along the process row to U-panel owners.
		sentTo = make(map[int]bool)
		for _, ub := range w.st.UBlocks[k] {
			dst := w.owner(k, ub.J)
			if dst != w.me() && !sentTo[dst] {
				sentTo[dst] = true
				w.r.Send(dst, tagOf(tagDiagForU, k), diag, diag.Bytes())
			}
		}
	}

	// L panel: procs in column K mod PCol owning L(I,K) blocks.
	if w.myC == k%w.g.PCol {
		ownsAny := false
		for _, lb := range w.st.LBlocks[k] {
			if w.owner(lb.I, k) == w.me() {
				ownsAny = true
				break
			}
		}
		if ownsAny {
			if diag == nil {
				diag = w.r.Recv(diagOwner, tagOf(tagDiagForL, k)).(*Block)
			}
			cols := w.procColsNeedingL(k)
			for _, lb := range w.st.LBlocks[k] {
				if w.owner(lb.I, k) != w.me() {
					continue
				}
				b := w.blocks[lb.I*ns+k]
				w.r.Compute(b.SolveUFromRight(diag))
				for _, c := range cols {
					dst := w.g.RankOf(lb.I%w.g.PRow, c)
					if dst != w.me() {
						w.r.Send(dst, tagOf(tagLPanel, k), b, b.Bytes())
					}
				}
			}
		}
	}

	// U panel: procs in row K mod PRow owning U(K,J) blocks.
	if w.myR == k%w.g.PRow {
		ownsAny := false
		for _, ub := range w.st.UBlocks[k] {
			if w.owner(k, ub.J) == w.me() {
				ownsAny = true
				break
			}
		}
		if ownsAny {
			if diag == nil {
				diag = w.r.Recv(diagOwner, tagOf(tagDiagForU, k)).(*Block)
			}
			rows := w.procRowsNeedingU(k)
			for _, ub := range w.st.UBlocks[k] {
				if w.owner(k, ub.J) != w.me() {
					continue
				}
				b := w.blocks[k*ns+ub.J]
				w.r.Compute(b.SolveLFromLeft(diag))
				for _, rr := range rows {
					dst := w.g.RankOf(rr, ub.J%w.g.PCol)
					if dst != w.me() {
						w.r.Send(dst, tagOf(tagUPanel, k), b, b.Bytes())
					}
				}
			}
		}
	}
}

// factorize runs the right-looking distributed LU of the paper's
// Figure 8, with optional pipelining, starting at panel w.start (0 in
// a fresh run, the checkpoint frontier after a restart).
func (w *worker) factorize() {
	ns := w.st.N
	for k := w.start; k < ns; k++ {
		if w.ckptEvery > 0 && k > w.start && (k-w.start)%w.ckptEvery == 0 {
			w.r.Barrier()
			w.onCkpt(k)
		}
		w.doPanel(k)

		// Gather the L and U blocks this rank needs for the rank-b update
		// (local blocks directly; remote blocks from the single source in
		// this row/column, in deterministic ascending order).
		needL := w.receivesL(k)
		needU := w.receivesU(k)
		lBlk := make(map[int]*Block)
		uBlk := make(map[int]*Block)
		srcL := w.g.RankOf(w.myR, k%w.g.PCol)
		srcU := w.g.RankOf(k%w.g.PRow, w.myC)
		for _, lb := range w.st.LBlocks[k] {
			if lb.I%w.g.PRow != w.myR {
				continue
			}
			if w.owner(lb.I, k) == w.me() {
				lBlk[lb.I] = w.blocks[lb.I*ns+k]
			} else if needL {
				lBlk[lb.I] = w.r.Recv(srcL, tagOf(tagLPanel, k)).(*Block)
			}
		}
		for _, ub := range w.st.UBlocks[k] {
			if ub.J%w.g.PCol != w.myC {
				continue
			}
			if w.owner(k, ub.J) == w.me() {
				uBlk[ub.J] = w.blocks[k*ns+ub.J]
			} else if needU {
				uBlk[ub.J] = w.r.Recv(srcU, tagOf(tagUPanel, k)).(*Block)
			}
		}

		apply := func(i, j int) {
			l, u := lBlk[i], uBlk[j]
			if l == nil || u == nil {
				return
			}
			t := w.blocks[i*ns+j]
			if t == nil {
				// Possible only with relaxed (amalgamated) supernodes: the
				// block-level crossing exists but every elementwise
				// contribution hits structural-zero padding, so no target
				// block was ever allocated.
				return
			}
			w.r.Compute(t.RankBUpdateInto(l, u, &w.ws))
		}

		if w.opts.Pipeline && k+1 < ns {
			// Update block column K+1 and block row K+1 first, then factor
			// panel K+1 immediately: this shortens the critical path of
			// step (1), exactly the paper's pipelined organization.
			for _, lb := range w.st.LBlocks[k] {
				apply(lb.I, k+1)
			}
			for _, ub := range w.st.UBlocks[k] {
				if ub.J != k+1 { // (k+1,k+1) was applied by the loop above
					apply(k+1, ub.J)
				}
			}
			w.doPanel(k + 1)
			for _, lb := range w.st.LBlocks[k] {
				for _, ub := range w.st.UBlocks[k] {
					if lb.I != k+1 && ub.J != k+1 {
						apply(lb.I, ub.J)
					}
				}
			}
		} else {
			for _, lb := range w.st.LBlocks[k] {
				for _, ub := range w.st.UBlocks[k] {
					apply(lb.I, ub.J)
				}
			}
		}
	}
	if w.ckptEvery > 0 {
		// Final checkpoint at frontier ns: a restart after a solve-phase
		// failure replays no factorization at all.
		w.r.Barrier()
		w.onCkpt(ns)
	}
}

// receivesL reports whether this rank is a broadcast destination for
// panel K's L blocks (it is when unpruned, or when its process column
// hosts a supernode with U(K,J) ≠ 0).
func (w *worker) receivesL(k int) bool {
	if w.myC == k%w.g.PCol {
		return false // owners use local blocks
	}
	if !w.opts.EDAGPrune {
		return true
	}
	for _, ub := range w.st.UBlocks[k] {
		if ub.J%w.g.PCol == w.myC {
			return true
		}
	}
	return false
}

func (w *worker) receivesU(k int) bool {
	if w.myR == k%w.g.PRow {
		return false
	}
	if !w.opts.EDAGPrune {
		return true
	}
	for _, lb := range w.st.LBlocks[k] {
		if lb.I%w.g.PRow == w.myR {
			return true
		}
	}
	return false
}

// defaultThreshold mirrors the serial tiny-pivot rule.
func defaultThreshold(a *sparse.CSC, opt float64) float64 {
	if opt != 0 {
		return opt
	}
	return math.Sqrt(2.220446049250313e-16) * a.Norm1()
}
