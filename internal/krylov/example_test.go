package krylov_test

import (
	"fmt"
	"math/rand"

	"gesp/internal/krylov"
	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

// Example solves a convection-diffusion system with ILU(0)-preconditioned
// GMRES and reports the iteration count.
func Example() {
	rng := rand.New(rand.NewSource(1))
	a := matgen.ConvectionDiffusion2D(20, 20, 1.0, 0.5, rng)
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)

	prec, err := krylov.NewILU0(a)
	if err != nil {
		panic(err)
	}
	x := make([]float64, a.Rows)
	_, st := krylov.GMRES(a, prec, x, b, krylov.Options{Tol: 1e-10})
	fmt.Printf("converged=%v accurate=%v\n", st.Converged, sparse.RelErrInf(x, want) < 1e-8)
	// Output:
	// converged=true accurate=true
}
