package krylov

import (
	"math"

	"gesp/internal/sparse"
)

// Options control the iterative solvers.
type Options struct {
	// Tol is the relative residual target ‖b−Ax‖/‖b‖; 0 means 1e-10.
	Tol float64
	// MaxIter bounds the total iterations; 0 means 1000.
	MaxIter int
	// Restart is GMRES's restart length m; 0 means 50.
	Restart int
	// Cancel, when non-nil, is polled once per iteration; returning true
	// stops the solve with the current iterate and Canceled set. The
	// resilience ladder and the serve layer wire context deadlines
	// through it so a runaway Krylov solve cannot outlive its request.
	Cancel func() bool
}

// Stats reports an iterative solve.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
	// Canceled reports the solve was stopped by Options.Cancel.
	Canceled bool
}

func (o Options) fill() Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	if o.Restart == 0 {
		o.Restart = 50
	}
	return o
}

// GMRES solves A·x = b with left-preconditioned restarted GMRES(m),
// starting from x (which is updated in place and also returned).
func GMRES(a *sparse.CSC, m Preconditioner, x, b []float64, opts Options) ([]float64, Stats) {
	opts = opts.fill()
	n := len(b)
	restart := opts.Restart
	if restart > n {
		restart = n
	}

	prec := func(v []float64) {
		m.Apply(v)
	}
	bn := append([]float64(nil), b...)
	prec(bn)
	bnorm := norm2(bn)
	if bnorm == 0 {
		bnorm = 1
	}

	r := make([]float64, n)
	w := make([]float64, n)
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, restart+1)
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)

	st := Stats{}
	for st.Iterations < opts.MaxIter {
		// r = M⁻¹(b − A·x)
		a.Residual(r, b, x)
		prec(r)
		beta := norm2(r)
		st.Residual = beta / bnorm
		if st.Residual <= opts.Tol {
			st.Converged = true
			return x, st
		}
		if math.IsNaN(st.Residual) || math.IsInf(st.Residual, 0) {
			// A poisoned operator or preconditioner (NaN/Inf factors)
			// contaminates every further iterate; bail immediately
			// instead of spinning to MaxIter on garbage.
			return x, st
		}
		if opts.Cancel != nil && opts.Cancel() {
			st.Canceled = true
			return x, st
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		for i := 0; i < n; i++ {
			v[0][i] = r[i] / beta
		}
		k := 0
		for ; k < restart && st.Iterations < opts.MaxIter; k++ {
			if opts.Cancel != nil && opts.Cancel() {
				st.Canceled = true
				break
			}
			st.Iterations++
			// w = M⁻¹·A·v_k
			a.MatVec(w, v[k])
			prec(w)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				for q := 0; q < n; q++ {
					w[q] -= h[i][k] * v[i][q]
				}
			}
			h[k+1][k] = norm2(w)
			if h[k+1][k] != 0 {
				for q := 0; q < n; q++ {
					v[k+1][q] = w[q] / h[k+1][k]
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation eliminating h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = h[k][k]/denom, h[k+1][k]/denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			st.Residual = math.Abs(g[k+1]) / bnorm
			if st.Residual <= opts.Tol {
				k++
				break
			}
		}
		// Solve the upper-triangular system and update x.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			if h[i][i] != 0 {
				y[i] = s / h[i][i]
			}
		}
		for i := 0; i < k; i++ {
			for q := 0; q < n; q++ {
				x[q] += y[i] * v[i][q]
			}
		}
		if st.Canceled {
			return x, st
		}
		if st.Residual <= opts.Tol {
			// Recompute the true residual to confirm.
			a.Residual(r, b, x)
			prec(r)
			st.Residual = norm2(r) / bnorm
			if st.Residual <= opts.Tol*10 {
				st.Converged = true
				return x, st
			}
		}
	}
	return x, st
}

// BiCGSTAB solves A·x = b with the preconditioned stabilized biconjugate
// gradient method.
func BiCGSTAB(a *sparse.CSC, m Preconditioner, x, b []float64, opts Options) ([]float64, Stats) {
	opts = opts.fill()
	n := len(b)
	r := make([]float64, n)
	a.Residual(r, b, x)
	rhat := append([]float64(nil), r...)
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	st := Stats{Residual: norm2(r) / bnorm}
	if st.Residual <= opts.Tol {
		st.Converged = true
		return x, st
	}
	var rho, alpha, omega float64 = 1, 1, 1
	vv := make([]float64, n)
	p := make([]float64, n)
	ph := make([]float64, n)
	s := make([]float64, n)
	sh := make([]float64, n)
	t := make([]float64, n)

	for st.Iterations < opts.MaxIter {
		if math.IsNaN(st.Residual) || math.IsInf(st.Residual, 0) {
			return x, st
		}
		if opts.Cancel != nil && opts.Cancel() {
			st.Canceled = true
			return x, st
		}
		st.Iterations++
		rhoNew := dot(rhat, r)
		if rhoNew == 0 {
			break // breakdown
		}
		if st.Iterations == 1 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*(p[i]-omega*vv[i])
			}
		}
		rho = rhoNew
		copy(ph, p)
		m.Apply(ph)
		a.MatVec(vv, ph)
		d := dot(rhat, vv)
		if d == 0 {
			break
		}
		alpha = rho / d
		for i := 0; i < n; i++ {
			s[i] = r[i] - alpha*vv[i]
		}
		if ns := norm2(s); ns/bnorm <= opts.Tol {
			for i := 0; i < n; i++ {
				x[i] += alpha * ph[i]
			}
			st.Residual = ns / bnorm
			st.Converged = true
			return x, st
		}
		copy(sh, s)
		m.Apply(sh)
		a.MatVec(t, sh)
		tt := dot(t, t)
		if tt == 0 {
			break
		}
		omega = dot(t, s) / tt
		for i := 0; i < n; i++ {
			x[i] += alpha*ph[i] + omega*sh[i]
			r[i] = s[i] - omega*t[i]
		}
		st.Residual = norm2(r) / bnorm
		if st.Residual <= opts.Tol {
			st.Converged = true
			return x, st
		}
		if omega == 0 {
			break
		}
	}
	return x, st
}
