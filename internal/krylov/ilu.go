// Package krylov provides preconditioned iterative solvers — ILU(0) with
// GMRES(m) and BiCGSTAB. The paper's related-work section highlights the
// Duff–Koster result that permuting large entries to the diagonal (GESP's
// step (1)) "substantially improves" the convergence of ILU-preconditioned
// iterative methods; this package exists to reproduce that observation on
// the testbed (see experiments.IterativeAblation).
package krylov

import (
	"errors"
	"fmt"
	"math"

	"gesp/internal/sparse"
)

// ErrILUBreakdown is returned when ILU(0) meets a zero pivot — the
// typical failure on matrices with zero or tiny diagonals, and exactly
// what MC64 preprocessing repairs.
var ErrILUBreakdown = errors.New("krylov: zero pivot in ILU(0)")

// ILU0 is an incomplete LU factorization with zero fill: L and U live on
// the sparsity pattern of A.
type ILU0 struct {
	n    int
	lPtr []int // strictly-lower entries per column
	lInd []int
	lVal []float64
	uPtr []int // upper entries per column including the diagonal (last)
	uInd []int
	uVal []float64
}

// NewILU0 computes the ILU(0) factorization of a square matrix.
func NewILU0(a *sparse.CSC) (*ILU0, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("krylov: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	p := &ILU0{n: n, lPtr: make([]int, n+1), uPtr: make([]int, n+1)}
	w := make([]float64, n)
	inPat := make([]int, n)
	for i := range inPat {
		inPat[i] = -1
	}
	for j := 0; j < n; j++ {
		// Scatter A(:,j); the diagonal is part of U even if absent from A
		// (it would then be structurally zero and break down, as ILU(0)
		// should).
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			w[a.RowInd[k]] = a.Val[k]
			inPat[a.RowInd[k]] = j
		}
		hasDiag := inPat[j] == j
		inPat[j] = j
		// Left-looking updates restricted to the pattern: ascending upper
		// entries are a topological order.
		for k := lo; k < hi; k++ {
			r := a.RowInd[k]
			if r >= j {
				continue
			}
			ukj := w[r]
			if ukj == 0 {
				continue
			}
			for q := p.lPtr[r]; q < p.lPtr[r+1]; q++ {
				if i := p.lInd[q]; inPat[i] == j {
					w[i] -= p.lVal[q] * ukj
				}
			}
		}
		piv := 0.0
		if hasDiag {
			piv = w[j]
		}
		if piv == 0 {
			return nil, fmt.Errorf("krylov: column %d: %w", j, ErrILUBreakdown)
		}
		// Store: upper entries ascending with diagonal last, lower scaled.
		for k := lo; k < hi; k++ {
			r := a.RowInd[k]
			if r < j {
				p.uInd = append(p.uInd, r)
				p.uVal = append(p.uVal, w[r])
			}
		}
		p.uInd = append(p.uInd, j)
		p.uVal = append(p.uVal, piv)
		p.uPtr[j+1] = len(p.uInd)
		for k := lo; k < hi; k++ {
			r := a.RowInd[k]
			if r > j {
				p.lInd = append(p.lInd, r)
				p.lVal = append(p.lVal, w[r]/piv)
			}
		}
		p.lPtr[j+1] = len(p.lInd)
		for k := lo; k < hi; k++ {
			w[a.RowInd[k]] = 0
		}
		w[j] = 0
	}
	return p, nil
}

// Apply overwrites x with (L·U)⁻¹·x.
func (p *ILU0) Apply(x []float64) {
	// Forward substitution (unit lower).
	for j := 0; j < p.n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for q := p.lPtr[j]; q < p.lPtr[j+1]; q++ {
			x[p.lInd[q]] -= p.lVal[q] * xj
		}
	}
	// Backward substitution.
	for j := p.n - 1; j >= 0; j-- {
		hi := p.uPtr[j+1] - 1
		xj := x[j] / p.uVal[hi]
		x[j] = xj
		if xj == 0 {
			continue
		}
		for q := p.uPtr[j]; q < hi; q++ {
			x[p.uInd[q]] -= p.uVal[q] * xj
		}
	}
}

// Preconditioner applies M⁻¹ in place.
type Preconditioner interface {
	Apply(x []float64)
}

// Identity is the do-nothing preconditioner.
type Identity struct{}

// Apply leaves x unchanged.
func (Identity) Apply([]float64) {}

var _ Preconditioner = (*ILU0)(nil)
var _ Preconditioner = Identity{}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
