package krylov

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gesp/internal/matgen"
	"gesp/internal/sparse"
)

func laplacian2D(nx int) *sparse.CSC {
	rng := rand.New(rand.NewSource(1))
	return matgen.ConvectionDiffusion2D(nx, nx, 0.8, 0.3, rng)
}

func rhsFor(a *sparse.CSC, want []float64) []float64 {
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	return b
}

func TestILU0ExactOnNoFillMatrix(t *testing.T) {
	// Tridiagonal: elimination produces no fill, so ILU(0) IS the exact
	// LU and one application solves the system to machine precision.
	n := 60
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 3)
		if i+1 < n {
			tr.Append(i+1, i, -1)
			tr.Append(i, i+1, -1)
		}
	}
	a := tr.ToCSC()
	p, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%7) - 3
	}
	x := rhsFor(a, want)
	p.Apply(x)
	if e := sparse.RelErrInf(x, want); e > 1e-12 {
		t.Errorf("ILU0 on tridiagonal not exact: error %g", e)
	}
}

func TestILU0BreaksOnZeroDiagonal(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{0, 1},
		{1, 1},
	})
	if _, err := NewILU0(a); !errors.Is(err, ErrILUBreakdown) {
		t.Errorf("got %v, want ErrILUBreakdown", err)
	}
}

func TestGMRESUnpreconditioned(t *testing.T) {
	a := laplacian2D(14)
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = 1
	}
	b := rhsFor(a, want)
	x := make([]float64, n)
	_, st := GMRES(a, Identity{}, x, b, Options{Tol: 1e-10, MaxIter: 2000})
	if !st.Converged {
		t.Fatalf("GMRES did not converge: resid %g after %d iters", st.Residual, st.Iterations)
	}
	if e := sparse.RelErrInf(x, want); e > 1e-7 {
		t.Errorf("error %g", e)
	}
}

func TestGMRESWithILUConvergesFaster(t *testing.T) {
	a := laplacian2D(20)
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%5) + 1
	}
	b := rhsFor(a, want)

	xPlain := make([]float64, n)
	_, stPlain := GMRES(a, Identity{}, xPlain, b, Options{Tol: 1e-10, MaxIter: 3000})

	p, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	xPrec := make([]float64, n)
	_, stPrec := GMRES(a, p, xPrec, b, Options{Tol: 1e-10, MaxIter: 3000})
	if !stPrec.Converged {
		t.Fatalf("ILU-GMRES did not converge: %g", stPrec.Residual)
	}
	if stPrec.Iterations >= stPlain.Iterations {
		t.Errorf("ILU did not accelerate GMRES: %d vs %d iterations", stPrec.Iterations, stPlain.Iterations)
	}
	if e := sparse.RelErrInf(xPrec, want); e > 1e-7 {
		t.Errorf("error %g", e)
	}
	t.Logf("GMRES iterations: plain=%d ilu=%d", stPlain.Iterations, stPrec.Iterations)
}

func TestBiCGSTABWithILU(t *testing.T) {
	a := laplacian2D(18)
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i))
	}
	b := rhsFor(a, want)
	p, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	_, st := BiCGSTAB(a, p, x, b, Options{Tol: 1e-10, MaxIter: 2000})
	if !st.Converged {
		t.Fatalf("BiCGSTAB did not converge: %g after %d", st.Residual, st.Iterations)
	}
	if e := sparse.RelErrInf(x, want); e > 1e-6 {
		t.Errorf("error %g", e)
	}
}

func TestGMRESRestartIndependence(t *testing.T) {
	a := laplacian2D(12)
	n := a.Rows
	want := make([]float64, n)
	for i := range want {
		want[i] = 1
	}
	b := rhsFor(a, want)
	for _, restart := range []int{5, 20, 100} {
		x := make([]float64, n)
		_, st := GMRES(a, Identity{}, x, b, Options{Tol: 1e-9, MaxIter: 5000, Restart: restart})
		if !st.Converged {
			t.Errorf("restart=%d: no convergence (resid %g)", restart, st.Residual)
			continue
		}
		if e := sparse.RelErrInf(x, want); e > 1e-6 {
			t.Errorf("restart=%d: error %g", restart, e)
		}
	}
}

func TestSolversHandleZeroRHS(t *testing.T) {
	a := laplacian2D(6)
	n := a.Rows
	b := make([]float64, n)
	x := make([]float64, n)
	_, st := GMRES(a, Identity{}, x, b, Options{})
	if !st.Converged {
		t.Error("GMRES on zero rhs did not converge instantly")
	}
	x2 := make([]float64, n)
	_, st2 := BiCGSTAB(a, Identity{}, x2, b, Options{})
	if !st2.Converged {
		t.Error("BiCGSTAB on zero rhs did not converge instantly")
	}
}

func TestGMRESCancelStopsTheSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := laplacian2D(8)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	polls := 0
	_, st := GMRES(a, Identity{}, x, b, Options{
		Tol:     1e-14,
		MaxIter: 1000,
		Cancel:  func() bool { polls++; return polls > 3 },
	})
	if !st.Canceled {
		t.Fatal("Canceled not set after Cancel returned true")
	}
	if st.Converged {
		t.Fatal("canceled solve claims convergence")
	}
	if st.Iterations > 10 {
		t.Fatalf("solve ran %d iterations after cancellation", st.Iterations)
	}
}

func TestBiCGSTABCancelStopsTheSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := laplacian2D(8)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	_, st := BiCGSTAB(a, Identity{}, x, b, Options{
		Tol:     1e-14,
		MaxIter: 1000,
		Cancel:  func() bool { return true },
	})
	if !st.Canceled {
		t.Fatal("Canceled not set after Cancel returned true")
	}
	if st.Iterations != 0 {
		t.Fatalf("solve ran %d iterations after immediate cancellation", st.Iterations)
	}
}

// nanPreconditioner poisons every vector it touches — the stand-in for
// NaN-corrupted LU factors used as a preconditioner.
type nanPreconditioner struct{}

func (nanPreconditioner) Apply(x []float64) {
	for i := range x {
		x[i] = math.NaN()
	}
}

func TestIterativeSolversBailOnNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := laplacian2D(6)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	_, st := GMRES(a, nanPreconditioner{}, x, b, Options{MaxIter: 1000})
	if st.Converged {
		t.Fatal("GMRES claims convergence through a NaN preconditioner")
	}
	if st.Iterations > 2 {
		t.Fatalf("GMRES spun %d iterations on NaN garbage instead of bailing", st.Iterations)
	}
}
