package lu

import "math"

// fingerprint-worthy state: the numeric factor values. The symbolic
// structure is covered separately by sparse.PatternHash; fingerprinting
// only LVal/UVal keeps the check O(nnz(L+U)) with no allocation, cheap
// enough to run per solve when Policy.VerifyFactors is on.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Fingerprint returns an FNV-1a hash over the bit patterns of the
// numeric factor values. The resilience ladder records it at
// factorization time and compares before solves to detect in-memory
// factor corruption (the serving layer's value-hash-mismatch fault):
// any flipped bit — including a value overwritten with NaN, whose bit
// pattern hashes like any other — changes the fingerprint.
func (f *Factors) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	for _, v := range f.LVal {
		h = fnvMix(h, math.Float64bits(v))
	}
	for _, v := range f.UVal {
		h = fnvMix(h, math.Float64bits(v))
	}
	return h
}

// NonFinite reports whether any stored factor value is NaN or ±Inf —
// factors that cannot produce a finite solve and disqualify every
// ladder rung that reuses them.
func (f *Factors) NonFinite() bool {
	for _, v := range f.LVal {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	for _, v := range f.UVal {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
