// Package lu provides the serial numeric factorization kernels of GESP:
// the static-pivoting left-looking factorization (step (3) of the paper's
// algorithm, including tiny-pivot replacement), a Gilbert–Peierls partial
// pivoting factorization used as the accuracy baseline (the paper's
// Figure 4 compares GESP against GEPP as implemented in SuperLU), a
// blocked right-looking variant sharing the distributed algorithm's
// structure, and the triangular solves.
package lu

import (
	"errors"
	"fmt"
	"math"

	"gesp/internal/kernels"
	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// Eps is the IEEE double-precision machine epsilon used throughout the
// paper's experiments.
const Eps = 2.220446049250313e-16

// ErrZeroPivot is returned when elimination meets an exactly zero pivot
// and tiny-pivot replacement is disabled — the failure mode of plain
// no-pivoting Gaussian elimination on 27 of the paper's 53 matrices.
// Concrete failures are *ZeroPivotError values, which carry the column
// where elimination broke; errors.Is(err, ErrZeroPivot) matches them.
var ErrZeroPivot = errors.New("lu: zero pivot encountered (tiny-pivot replacement disabled)")

// ZeroPivotError reports where static pivoting broke: the column whose
// pivot was exactly zero and the replacement threshold that was in
// force (sqrt(eps)·||A|| unless overridden). The resilience ladder and
// diagnostics use the column to report the failure site; errors.As
// extracts it, errors.Is(err, ErrZeroPivot) still matches.
type ZeroPivotError struct {
	Col       int
	Threshold float64
}

func (e *ZeroPivotError) Error() string {
	return fmt.Sprintf("lu: column %d: zero pivot encountered (tiny-pivot replacement disabled, threshold %.6e)", e.Col, e.Threshold)
}

// Is makes errors.Is(err, ErrZeroPivot) succeed for typed zero-pivot
// failures, preserving the sentinel contract existing callers rely on.
func (e *ZeroPivotError) Is(target error) bool { return target == ErrZeroPivot }

// Options control the static factorization.
type Options struct {
	// ReplaceTinyPivot enables step (3)'s fix: any pivot smaller in
	// magnitude than Threshold is set to ±Threshold.
	ReplaceTinyPivot bool
	// Threshold overrides the replacement threshold; 0 means the paper's
	// sqrt(eps)*||A|| (1-norm).
	Threshold float64
	// Aggressive replaces tiny pivots with the largest magnitude of the
	// current column instead of sqrt(eps)*||A|| (the paper's future-work
	// proposal); the resulting rank-one perturbations are recorded in
	// PivotMods for Sherman–Morrison–Woodbury recovery.
	Aggressive bool
}

// PivotMod records one perturbed pivot: position Col, original value Old,
// stored value New. The factored matrix is A + Σ (New-Old)·e_col·e_colᵀ.
type PivotMod struct {
	Col      int
	Old, New float64
}

// Factors holds a computed LU factorization in the static structure:
// A ≈ L·U with L unit lower triangular (strictly-lower entries stored,
// parallel to sym.LInd) and U upper triangular including the diagonal
// (parallel to sym.UInd).
type Factors struct {
	Sym  *symbolic.Result
	LVal []float64
	UVal []float64
	// TinyPivots counts replaced pivots; PivotMods records them.
	TinyPivots int
	PivotMods  []PivotMod
	// ColAMax[j] is max |A(i,j)| of the input, retained for pivot-growth
	// diagnostics.
	ColAMax []float64
}

// Factorize runs the GESP numeric factorization of a (already permuted
// and scaled) using the static structure sym. It fails only on an exactly
// zero pivot with replacement disabled.
func Factorize(a *sparse.CSC, sym *symbolic.Result, opts Options) (*Factors, error) {
	n := sym.N
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("lu: matrix is %dx%d, symbolic structure is for n=%d", a.Rows, a.Cols, n)
	}
	thresh := opts.Threshold
	if thresh == 0 {
		thresh = math.Sqrt(Eps) * a.Norm1()
	}
	f := &Factors{
		Sym:     sym,
		LVal:    make([]float64, sym.NnzL()),
		UVal:    make([]float64, sym.NnzU()),
		ColAMax: make([]float64, n),
	}
	w := make([]float64, n) // sparse accumulator

	for j := 0; j < n; j++ {
		// Scatter A(:,j); record the column max for growth statistics.
		cmax := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			w[a.RowInd[k]] = a.Val[k]
			if v := math.Abs(a.Val[k]); v > cmax {
				cmax = v
			}
		}
		f.ColAMax[j] = cmax

		// Left-looking updates: U rows ascending is a topological order.
		// Each update is one sparse-column gather-scatter, the panel
		// factor's hot loop, run through the shared kernel.
		urows := sym.UColRows(j)
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]-1; p++ { // skip diagonal (last)
			k := sym.UInd[p]
			ukj := w[k]
			f.UVal[p] = ukj
			if ukj == 0 {
				continue
			}
			lo, hi := sym.LPtr[k], sym.LPtr[k+1]
			kernels.SpAxpy(w, sym.LInd[lo:hi], f.LVal[lo:hi], ukj)
		}

		// Pivot with the static-pivoting fix.
		piv := w[j]
		if math.Abs(piv) < thresh {
			if !opts.ReplaceTinyPivot {
				if piv == 0 {
					return nil, &ZeroPivotError{Col: j, Threshold: thresh}
				}
			} else {
				repl := thresh
				if opts.Aggressive && cmax > thresh {
					repl = cmax
				}
				newPiv := math.Copysign(repl, piv)
				if piv == 0 {
					newPiv = repl
				}
				f.PivotMods = append(f.PivotMods, PivotMod{Col: j, Old: piv, New: newPiv})
				f.TinyPivots++
				piv = newPiv
			}
		}
		f.UVal[sym.UPtr[j+1]-1] = piv

		// Scale the strictly-lower part into L.
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			f.LVal[q] = w[sym.LInd[q]] / piv
		}

		// Clear the accumulator along the column pattern.
		for _, i := range urows {
			w[i] = 0
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			w[sym.LInd[q]] = 0
		}
	}
	return f, nil
}

// SolveL overwrites x with L⁻¹x (forward substitution, implied unit
// diagonal).
//
//gesp:hotpath
func (f *Factors) SolveL(x []float64) {
	sym := f.Sym
	for j := 0; j < sym.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		lo, hi := sym.LPtr[j], sym.LPtr[j+1]
		kernels.SpAxpy(x, sym.LInd[lo:hi], f.LVal[lo:hi], xj)
	}
}

// SolveU overwrites x with U⁻¹x (backward substitution).
//
//gesp:hotpath
func (f *Factors) SolveU(x []float64) {
	sym := f.Sym
	for j := sym.N - 1; j >= 0; j-- {
		hi := sym.UPtr[j+1] - 1
		xj := x[j] / f.UVal[hi] // diagonal is the last entry
		x[j] = xj
		if xj == 0 {
			continue
		}
		lo := sym.UPtr[j]
		kernels.SpAxpy(x, sym.UInd[lo:hi], f.UVal[lo:hi], xj)
	}
}

// Solve overwrites x (initially b) with A⁻¹b using the factors.
func (f *Factors) Solve(x []float64) {
	f.SolveL(x)
	f.SolveU(x)
}

// SolveLT overwrites x with L⁻ᵀx, and SolveUT with U⁻ᵀx; both are needed
// by the Hager condition estimator, which solves with Aᵀ.
//
//gesp:hotpath
func (f *Factors) SolveLT(x []float64) {
	sym := f.Sym
	for j := sym.N - 1; j >= 0; j-- {
		lo, hi := sym.LPtr[j], sym.LPtr[j+1]
		x[j] = kernels.SpDotSub(x[j], sym.LInd[lo:hi], f.LVal[lo:hi], x)
	}
}

// SolveUT overwrites x with U⁻ᵀx.
//
//gesp:hotpath
func (f *Factors) SolveUT(x []float64) {
	sym := f.Sym
	for j := 0; j < sym.N; j++ {
		lo, hi := sym.UPtr[j], sym.UPtr[j+1]-1
		s := kernels.SpDotSub(x[j], sym.UInd[lo:hi], f.UVal[lo:hi], x)
		x[j] = s / f.UVal[hi]
	}
}

// SolveT overwrites x with A⁻ᵀx.
func (f *Factors) SolveT(x []float64) {
	f.SolveUT(x)
	f.SolveLT(x)
}

// ReciprocalPivotGrowth returns min_j ( max|A(:,j)| / max|(L+U)(:,j)| ),
// the SuperLU stability diagnostic: values near 1 mean no growth, tiny
// values signal instability.
func (f *Factors) ReciprocalPivotGrowth() float64 {
	sym := f.Sym
	rpg := math.Inf(1)
	for j := 0; j < sym.N; j++ {
		um := 0.0
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]; p++ {
			if v := math.Abs(f.UVal[p]); v > um {
				um = v
			}
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			if v := math.Abs(f.LVal[q] * f.UVal[sym.UPtr[j+1]-1]); v > um {
				um = v
			}
		}
		if um == 0 {
			continue
		}
		if r := f.ColAMax[j] / um; r < rpg {
			rpg = r
		}
	}
	if math.IsInf(rpg, 1) {
		return 1
	}
	return rpg
}
