package lu

import (
	"math/rand"
	"testing"

	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// TestSolveMultiGolden checks the batched kernel against repeated
// single-RHS Solve calls. The column-blocked sweep performs the same
// per-RHS updates in the same order, so the agreement should be exact;
// the round-off tolerance guards the contract rather than the
// implementation.
func TestSolveMultiGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 60} {
		a := randomSolvable(rng, n, 0.15)
		sym, err := symbolic.Factorize(a, symbolic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 17} {
			// One packed multi-RHS buffer and the equivalent k singles.
			multi := make([]float64, n*k)
			singles := make([][]float64, k)
			for r := 0; r < k; r++ {
				singles[r] = make([]float64, n)
				for i := 0; i < n; i++ {
					v := rng.NormFloat64()
					if rng.Intn(4) == 0 {
						v = 0 // exercise the zero-skip path
					}
					multi[r*n+i] = v
					singles[r][i] = v
				}
			}
			f.SolveMulti(multi, k)
			for r := 0; r < k; r++ {
				f.Solve(singles[r])
				if e := sparse.RelErrInf(multi[r*n:(r+1)*n], singles[r]); e > 1e-13 {
					t.Fatalf("n=%d k=%d rhs %d: SolveMulti diverges from Solve by %g", n, k, r, e)
				}
			}
		}
	}
}

// TestSolveMultiRecoversSolution solves A·X = B for a known X and checks
// the batched path end to end, including blocks larger than rhsBlock.
func TestSolveMultiRecoversSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, k := 48, rhsBlock*2+3 // spans full, full, partial blocks
	a := randomSolvable(rng, n, 0.2)
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n*k)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	got := make([]float64, n*k)
	for r := 0; r < k; r++ {
		a.MatVec(got[r*n:(r+1)*n], want[r*n:(r+1)*n])
	}
	f.SolveMulti(got, k)
	if e := sparse.RelErrInf(got, want); e > 1e-8 {
		t.Fatalf("batched solve error %g", e)
	}
}

func BenchmarkSolveMulti(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n, k := 400, 16
	a := randomSolvable(rng, n, 0.05)
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n*k)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	work := make([]float64, n*k)
	b.Run("multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(work, rhs)
			f.SolveMulti(work, k)
		}
	})
	b.Run("repeated-single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(work, rhs)
			for r := 0; r < k; r++ {
				f.Solve(work[r*n : (r+1)*n])
			}
		}
	})
}
