package lu

import (
	"errors"
	"fmt"
	"math"

	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// ErrSingular is returned by GEPP when a whole pivot column is zero.
var ErrSingular = errors.New("lu: matrix is numerically singular")

// GEPPFactors is a partial-pivoting factorization Pr·A = L·U produced by
// the Gilbert–Peierls algorithm. It serves as the paper's accuracy
// baseline ("GEPP as implemented in SuperLU") in Figure 4.
type GEPPFactors struct {
	*Factors
	// RowPerm maps original row index to pivot position: row i of A is row
	// RowPerm[i] of L·U.
	RowPerm []int
}

// GEPP factors a with partial pivoting and dynamic symbolic structure
// (depth-first reachability per column). Unlike GESP, the fill pattern
// depends on the numeric pivot choices and cannot be predicted statically
// — which is exactly the property that motivates static pivoting on
// distributed machines.
func GEPP(a *sparse.CSC) (*GEPPFactors, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("lu: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	// Dynamic L in original row indices: per-column slices.
	lRows := make([][]int, n) // includes the pivot row as first entry
	lVals := make([][]float64, n)
	uRows := make([][]int, n) // pivot positions k < j
	uVals := make([][]float64, n)
	uDiag := make([]float64, n)
	pinv := make([]int, n) // original row -> pivot position, -1 while free
	for i := range pinv {
		pinv[i] = -1
	}

	x := make([]float64, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	stack := make([]int, 0, 64)
	frame := make([]int, 0, 64)
	topo := make([]int, 0, 64) // reach set in reverse topological order

	colAMax := make([]float64, n)

	for j := 0; j < n; j++ {
		// Symbolic: depth-first reach of pattern(A(:,j)) through pivotal
		// rows; topo collects nodes in post-order (dependencies last).
		topo = topo[:0]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			root := a.RowInd[k]
			if mark[root] == j {
				continue
			}
			mark[root] = j
			stack = append(stack[:0], root)
			frame = append(frame[:0], 0)
			for len(stack) > 0 {
				top := len(stack) - 1
				node := stack[top]
				adj := []int(nil)
				if kp := pinv[node]; kp >= 0 {
					adj = lRows[kp]
				}
				cur := frame[top]
				advanced := false
				for ; cur < len(adj); cur++ {
					i := adj[cur]
					if i == node || mark[i] == j {
						continue
					}
					mark[i] = j
					frame[top] = cur + 1
					stack = append(stack, i)
					frame = append(frame, 0)
					advanced = true
					break
				}
				if !advanced {
					topo = append(topo, node)
					stack = stack[:top]
					frame = frame[:top]
				}
			}
		}

		// Numeric: scatter and eliminate in topological order (post-order
		// reversed: dependencies of a node finish before it, so walk topo
		// from the end).
		cmax := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			x[a.RowInd[k]] = a.Val[k]
			if v := math.Abs(a.Val[k]); v > cmax {
				cmax = v
			}
		}
		colAMax[j] = cmax
		for p := len(topo) - 1; p >= 0; p-- {
			i := topo[p]
			k := pinv[i]
			if k < 0 {
				continue
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			rows, vals := lRows[k], lVals[k]
			for q := 1; q < len(rows); q++ { // entry 0 is the pivot row
				x[rows[q]] -= vals[q] * xi
			}
		}

		// Partial pivoting over the free rows of the reach set.
		piv, ipiv := 0.0, -1
		for _, i := range topo {
			if pinv[i] < 0 {
				if v := math.Abs(x[i]); v > piv {
					piv, ipiv = v, i
				}
			}
		}
		if ipiv == -1 || piv == 0 {
			return nil, fmt.Errorf("lu: column %d: %w", j, ErrSingular)
		}
		pinv[ipiv] = j
		pv := x[ipiv]
		uDiag[j] = pv

		// Store U (pivotal rows) and L (free rows, scaled), then clear.
		for _, i := range topo {
			if k := pinv[i]; k >= 0 && k < j {
				if x[i] != 0 {
					uRows[j] = append(uRows[j], k)
					uVals[j] = append(uVals[j], x[i])
				}
			} else if i != ipiv {
				if x[i] != 0 {
					lRows[j] = append(lRows[j], i)
					lVals[j] = append(lVals[j], x[i]/pv)
				}
			}
			x[i] = 0
		}
		// Prepend the pivot row marker expected by the DFS adjacency.
		lRows[j] = append([]int{ipiv}, lRows[j]...)
		lVals[j] = append([]float64{1}, lVals[j]...)
	}

	// Re-express in pivot-position coordinates as a static Factors value so
	// the common solve and refinement machinery applies unchanged.
	sym := &symbolic.Result{
		N:      n,
		LPtr:   make([]int, n+1),
		UPtr:   make([]int, n+1),
		Parent: make([]int, n),
	}
	f := &GEPPFactors{
		Factors: &Factors{Sym: sym, ColAMax: colAMax},
		RowPerm: pinv,
	}
	buf := make([]entryIV, 0, 64)
	for j := 0; j < n; j++ {
		buf = buf[:0]
		rows, vals := lRows[j], lVals[j]
		for q := 1; q < len(rows); q++ {
			buf = append(buf, entryIV{pinv[rows[q]], vals[q]})
		}
		sortIV(buf)
		for _, e := range buf {
			sym.LInd = append(sym.LInd, e.i)
			f.LVal = append(f.LVal, e.v)
		}
		sym.LPtr[j+1] = len(sym.LInd)

		buf = buf[:0]
		for q := range uRows[j] {
			buf = append(buf, entryIV{uRows[j][q], uVals[j][q]})
		}
		sortIV(buf)
		for _, e := range buf {
			sym.UInd = append(sym.UInd, e.i)
			f.UVal = append(f.UVal, e.v)
		}
		sym.UInd = append(sym.UInd, j)
		f.UVal = append(f.UVal, uDiag[j])
		sym.UPtr[j+1] = len(sym.UInd)

		if sym.LPtr[j+1] > sym.LPtr[j] {
			sym.Parent[j] = sym.LInd[sym.LPtr[j]]
		} else {
			sym.Parent[j] = -1
		}
	}
	sym.SupPtr = make([]int, n+1)
	sym.SupOf = make([]int, n)
	for j := 0; j <= n; j++ {
		sym.SupPtr[j] = j
	}
	for j := 0; j < n; j++ {
		sym.SupOf[j] = j
	}
	return f, nil
}

type entryIV struct {
	i int
	v float64
}

func sortIV(s []entryIV) {
	for a := 1; a < len(s); a++ {
		e := s[a]
		b := a - 1
		for b >= 0 && s[b].i > e.i {
			s[b+1] = s[b]
			b--
		}
		s[b+1] = e
	}
}

// SolvePerm solves A·x = b given GEPP factors: it permutes b by RowPerm,
// runs the triangular solves, and returns x in the original unknown order.
func (f *GEPPFactors) SolvePerm(b []float64) []float64 {
	x := sparse.PermuteVec(f.RowPerm, b)
	f.Solve(x)
	return x
}
