package lu

import (
	"math"
	"math/rand"
	"testing"

	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// arrowToDense builds a matrix whose fill produces a genuinely dense
// trailing block: a banded head plus a dense coupling tail.
func arrowToDense(rng *rand.Rand, n, tail int) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		t.Append(i, i, 6+rng.Float64())
		if i+1 < n {
			t.Append(i+1, i, rng.NormFloat64()*0.5)
			t.Append(i, i+1, rng.NormFloat64()*0.5)
		}
	}
	for i := n - tail; i < n; i++ {
		for j := n - tail; j < n; j++ {
			if i != j {
				t.Append(i, j, rng.NormFloat64()*0.3)
			}
		}
		// Couple the tail to the head so elimination order matters.
		t.Append(i, i%(n-tail), rng.NormFloat64()*0.2)
		t.Append(i%(n-tail), i, rng.NormFloat64()*0.2)
	}
	return t.ToCSC()
}

func TestDenseTailMatchesSparseFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		n := 60 + rng.Intn(60)
		a := arrowToDense(rng, n, 12+rng.Intn(10))
		sym, err := symbolic.Factorize(a, symbolic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fSparse, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		fTail, tail, err := FactorizeDenseTail(a, sym, Options{ReplaceTinyPivot: true}, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if tail >= n {
			t.Fatalf("trial %d: dense tail never triggered (n=%d)", trial, n)
		}
		// Factor values must agree to round-off.
		scale := a.MaxAbs()
		for q := range fSparse.LVal {
			if d := math.Abs(fSparse.LVal[q] - fTail.LVal[q]); d > 1e-9*scale {
				t.Fatalf("trial %d: L values diverge by %g at %d", trial, d, q)
			}
		}
		for p := range fSparse.UVal {
			if d := math.Abs(fSparse.UVal[p] - fTail.UVal[p]); d > 1e-9*scale {
				t.Fatalf("trial %d: U values diverge by %g at %d", trial, d, p)
			}
		}
		// And the solve must work.
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		fTail.Solve(b)
		if e := sparse.RelErrInf(b, want); e > 1e-8 {
			t.Fatalf("trial %d: dense-tail solve error %g", trial, e)
		}
	}
}

func TestDenseTailNeverTriggersOnSparse(t *testing.T) {
	// A tridiagonal system stays sparse: the switch must not trigger at a
	// high threshold.
	n := 200
	tr := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 3)
		if i+1 < n {
			tr.Append(i+1, i, -1)
			tr.Append(i, i+1, -1)
		}
	}
	a := tr.ToCSC()
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	_, tail, err := FactorizeDenseTail(a, sym, Options{}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// A tridiagonal trailing block of size m has 3m-2 entries; density
	// 0.9 only holds for m < 4, below the minimum block size.
	if tail != n {
		t.Errorf("dense tail triggered at %d on a tridiagonal matrix", tail)
	}
}

func TestDenseTailZeroPivotPolicy(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{0, 1, 1, 1},
		{1, 0, 1, 1},
		{1, 1, 0.5, 1},
		{1, 1, 1, 0.5},
	})
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	if _, _, err := FactorizeDenseTail(a, sym, Options{}, 0.5); err == nil {
		t.Error("zero pivot accepted with replacement off")
	}
	f, _, err := FactorizeDenseTail(a, sym, Options{ReplaceTinyPivot: true}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots == 0 {
		t.Error("no tiny pivots recorded")
	}
}

func TestLevelScheduleStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	a := randomSolvable(rng, 120, 0.04)
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	ls := f.NewLevelSchedule()
	fwd, bwd := ls.NumLevels()
	if fwd <= 0 || bwd <= 0 {
		t.Fatal("empty level schedule")
	}
	// Every column appears exactly once per schedule.
	seen := make([]bool, sym.N)
	for _, lvl := range ls.LLevels {
		for _, j := range lvl {
			if seen[j] {
				t.Fatalf("column %d scheduled twice (forward)", j)
			}
			seen[j] = true
		}
	}
	for j, s := range seen {
		if !s {
			t.Fatalf("column %d missing from forward schedule", j)
		}
	}
	// Dependencies must respect levels: L(i,j) != 0 => level(i) > level(j).
	level := make([]int, sym.N)
	for d, lvl := range ls.LLevels {
		for _, j := range lvl {
			level[j] = d
		}
	}
	for j := 0; j < sym.N; j++ {
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			if level[sym.LInd[q]] <= level[j] {
				t.Fatalf("forward level order violated: L(%d,%d)", sym.LInd[q], j)
			}
		}
	}
	t.Logf("n=%d: %d forward levels, %d backward levels", sym.N, fwd, bwd)
}

func TestParallelSolveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		n := 80 + rng.Intn(120)
		a := randomSolvable(rng, n, 0.05)
		sym, _ := symbolic.Factorize(a, symbolic.Options{})
		f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		ls := f.NewLevelSchedule()
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		serial := append([]float64(nil), b...)
		f.Solve(serial)
		for _, workers := range []int{1, 2, 4, 8} {
			par := append([]float64(nil), b...)
			f.ParallelSolve(ls, par, workers)
			for i := range par {
				if d := math.Abs(par[i] - serial[i]); d > 1e-12*(math.Abs(serial[i])+1) {
					t.Fatalf("trial %d workers=%d: mismatch at %d: %g vs %g", trial, workers, i, par[i], serial[i])
				}
			}
		}
	}
}
