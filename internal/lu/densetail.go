package lu

import (
	"fmt"
	"math"

	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

// FactorizeDenseTail implements the paper's future-work proposal of
// "switching to a dense factorization when the submatrix at the lower
// right corner becomes sufficiently dense": columns before the switch
// point factor with the sparse left-looking kernel, the trailing Schur
// complement is formed densely and eliminated with a dense kernel.
//
// Positions outside the static fill pattern stay exactly zero through
// elimination (the pattern is closed under no-pivot elimination), so the
// dense tail computes the same factors as the sparse code up to
// round-off reordering. tailDensity is the trailing-fill density
// threshold triggering the switch (the paper suggests "sufficiently
// dense"; 0.5–0.8 are sensible). It returns the factors and the first
// column handled densely (n if the switch never triggered).
func FactorizeDenseTail(a *sparse.CSC, sym *symbolic.Result, opts Options, tailDensity float64) (*Factors, int, error) {
	n := sym.N
	if a.Rows != n || a.Cols != n {
		return nil, 0, fmt.Errorf("lu: matrix is %dx%d, symbolic structure is for n=%d", a.Rows, a.Cols, n)
	}
	tail := denseTailStart(sym, tailDensity)
	thresh := opts.Threshold
	if thresh == 0 {
		thresh = math.Sqrt(Eps) * a.Norm1()
	}
	f := &Factors{
		Sym:     sym,
		LVal:    make([]float64, sym.NnzL()),
		UVal:    make([]float64, sym.NnzU()),
		ColAMax: make([]float64, n),
	}
	w := make([]float64, n)

	// Phase 1: sparse left-looking for the head columns (same kernel as
	// Factorize, bounded to j < tail).
	for j := 0; j < tail; j++ {
		cmax := scatterColumn(a, j, w)
		f.ColAMax[j] = cmax
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]-1; p++ {
			k := sym.UInd[p]
			ukj := w[k]
			f.UVal[p] = ukj
			if ukj == 0 {
				continue
			}
			for q := sym.LPtr[k]; q < sym.LPtr[k+1]; q++ {
				w[sym.LInd[q]] -= f.LVal[q] * ukj
			}
		}
		piv, err := f.pick(j, w[j], cmax, thresh, opts)
		if err != nil {
			return nil, 0, err
		}
		f.UVal[sym.UPtr[j+1]-1] = piv
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			f.LVal[q] = w[sym.LInd[q]] / piv
		}
		clearColumn(sym, j, w)
	}
	if tail >= n {
		return f, n, nil
	}

	// Phase 2: form the dense trailing Schur complement
	// S = A(t:,t:) − L(t:,0:t)·U(0:t,t:).
	m := n - tail
	s := make([]float64, m*m) // row-major
	for j := tail; j < n; j++ {
		cmax := 0.0
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if v := math.Abs(a.Val[k]); v > cmax {
				cmax = v
			}
			if i := a.RowInd[k]; i >= tail {
				s[(i-tail)*m+(j-tail)] = a.Val[k]
			}
		}
		f.ColAMax[j] = cmax
		// Head-column contributions to column j come through U(k,j), k <
		// tail, which themselves need the left-looking pass over column j
		// restricted to head pivots.
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if i := a.RowInd[k]; i < tail {
				w[i] = a.Val[k]
			}
		}
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]-1; p++ {
			k := sym.UInd[p]
			if k >= tail {
				break // only head pivots participate in this phase
			}
			ukj := w[k]
			f.UVal[p] = ukj
			if ukj == 0 {
				continue
			}
			for q := sym.LPtr[k]; q < sym.LPtr[k+1]; q++ {
				i := sym.LInd[q]
				if i < tail {
					w[i] -= f.LVal[q] * ukj
				} else {
					s[(i-tail)*m+(j-tail)] -= f.LVal[q] * ukj
				}
			}
		}
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]-1; p++ {
			if k := sym.UInd[p]; k < tail {
				w[k] = 0
			}
		}
	}

	// Phase 3: dense no-pivot elimination of S with tiny-pivot handling.
	for k := 0; k < m; k++ {
		col := tail + k
		piv, err := f.pick(col, s[k*m+k], f.ColAMax[col], thresh, opts)
		if err != nil {
			return nil, 0, err
		}
		s[k*m+k] = piv
		for i := k + 1; i < m; i++ {
			s[i*m+k] /= piv
		}
		for i := k + 1; i < m; i++ {
			lik := s[i*m+k]
			if lik == 0 {
				continue
			}
			row := s[i*m:]
			prow := s[k*m:]
			for j := k + 1; j < m; j++ {
				row[j] -= lik * prow[j]
			}
		}
	}
	// Scatter the dense factors back into the static pattern.
	for j := tail; j < n; j++ {
		jj := j - tail
		for p := sym.UPtr[j]; p < sym.UPtr[j+1]; p++ {
			if k := sym.UInd[p]; k >= tail {
				f.UVal[p] = s[(k-tail)*m+jj]
			}
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			f.LVal[q] = s[(sym.LInd[q]-tail)*m+jj]
		}
	}
	return f, tail, nil
}

// pick applies the tiny-pivot policy shared by both phases.
func (f *Factors) pick(col int, piv, cmax, thresh float64, opts Options) (float64, error) {
	if math.Abs(piv) >= thresh {
		return piv, nil
	}
	if !opts.ReplaceTinyPivot {
		if piv == 0 {
			return 0, &ZeroPivotError{Col: col, Threshold: thresh}
		}
		return piv, nil
	}
	repl := thresh
	if opts.Aggressive && cmax > thresh {
		repl = cmax
	}
	newPiv := math.Copysign(repl, piv)
	if piv == 0 {
		newPiv = repl
	}
	f.PivotMods = append(f.PivotMods, PivotMod{Col: col, Old: piv, New: newPiv})
	f.TinyPivots++
	return newPiv, nil
}

func scatterColumn(a *sparse.CSC, j int, w []float64) float64 {
	cmax := 0.0
	for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
		w[a.RowInd[k]] = a.Val[k]
		if v := math.Abs(a.Val[k]); v > cmax {
			cmax = v
		}
	}
	return cmax
}

func clearColumn(sym *symbolic.Result, j int, w []float64) {
	for _, i := range sym.UColRows(j) {
		w[i] = 0
	}
	for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
		w[sym.LInd[q]] = 0
	}
}

// denseTailStart finds the first column t such that the trailing fill
// F(t:, t:) has density at least the threshold; returns n when no
// trailing block qualifies (or the threshold is >= 1).
func denseTailStart(sym *symbolic.Result, density float64) int {
	n := sym.N
	if density >= 1 || n == 0 {
		return n
	}
	// Exact suffix sweep: trailing(t) counts fill entries with both
	// indices >= t. Adding "line t" to the block contributes the whole L
	// column t (rows > t), the diagonal, and the strictly-upper entries of
	// U row t (columns > t) — everything else of line t lies outside.
	best := n
	var trailing int64
	for t := n - 1; t >= 0; t-- {
		trailing += int64(sym.LPtr[t+1]-sym.LPtr[t]) + 1 + int64(uRowSuffix(sym, t))
		size := int64(n - t)
		if size >= 4 && trailing >= int64(float64(size*size)*density) {
			best = t
		}
	}
	return best
}

// uRowCounts caches, per row, the number of strictly-upper U entries; all
// such entries have column > row, so they are inside any trailing block
// that contains the row.
func uRowSuffix(sym *symbolic.Result, row int) int {
	if sym.URowCount == nil {
		counts := make([]int, sym.N)
		for j := 0; j < sym.N; j++ {
			for p := sym.UPtr[j]; p < sym.UPtr[j+1]-1; p++ {
				counts[sym.UInd[p]]++
			}
		}
		sym.URowCount = counts
	}
	return sym.URowCount[row]
}
