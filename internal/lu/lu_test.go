package lu

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gesp/internal/sparse"
	"gesp/internal/symbolic"
)

func randomSolvable(rng *rand.Rand, n int, density float64) *sparse.CSC {
	t := sparse.NewTriplet(n, n)
	for j := 0; j < n; j++ {
		t.Append(j, j, 2+rng.Float64()) // diagonally strong: static pivoting is exact
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < density {
				t.Append(i, j, rng.NormFloat64()*0.3)
			}
		}
	}
	return t.ToCSC()
}

// multiplyLU reconstructs L*U densely from factors for verification.
func multiplyLU(f *Factors) [][]float64 {
	n := f.Sym.N
	l := make([][]float64, n)
	u := make([][]float64, n)
	for i := 0; i < n; i++ {
		l[i] = make([]float64, n)
		u[i] = make([]float64, n)
		l[i][i] = 1
	}
	for j := 0; j < n; j++ {
		for q := f.Sym.LPtr[j]; q < f.Sym.LPtr[j+1]; q++ {
			l[f.Sym.LInd[q]][j] = f.LVal[q]
		}
		for p := f.Sym.UPtr[j]; p < f.Sym.UPtr[j+1]; p++ {
			u[f.Sym.UInd[p]][j] = f.UVal[p]
		}
	}
	prod := make([][]float64, n)
	for i := 0; i < n; i++ {
		prod[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= j && k <= i; k++ {
				s += l[i][k] * u[k][j]
			}
			prod[i][j] = s
		}
	}
	return prod
}

func TestGESPReconstructsA(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(25)
		a := randomSolvable(rng, n, 0.2)
		sym, err := symbolic.Factorize(a, symbolic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		if f.TinyPivots != 0 {
			t.Fatalf("trial %d: diagonally dominant matrix needed %d pivot replacements", trial, f.TinyPivots)
		}
		prod := multiplyLU(f)
		da := a.Dense()
		scale := a.MaxAbs()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(prod[i][j]-da[i][j]) > 1e-10*scale {
					t.Fatalf("trial %d: (L·U)(%d,%d) = %g, A = %g", trial, i, j, prod[i][j], da[i][j])
				}
			}
		}
	}
}

func TestGESPSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(40)
		a := randomSolvable(rng, n, 0.15)
		sym, err := symbolic.Factorize(a, symbolic.Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = 1 // the paper's experimental setup: x_true = ones
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		f.Solve(b)
		if err := sparse.RelErrInf(b, want); err > 1e-10 {
			t.Fatalf("trial %d: relative error %g", trial, err)
		}
	}
}

func TestGESPTransposeSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 25
	a := randomSolvable(rng, n, 0.2)
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, err := Factorize(a, sym, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%5) - 2
	}
	b := make([]float64, n)
	a.MatTVec(b, want) // b = Aᵀ·want
	f.SolveT(b)
	if err := sparse.RelErrInf(b, want); err > 1e-9 {
		t.Fatalf("transpose solve relative error %g", err)
	}
}

func TestGESPZeroPivotFailsWithoutReplacement(t *testing.T) {
	// Zero diagonal that stays zero: plain no-pivoting must fail, the
	// static-pivoting fix must succeed — the paper's central claim.
	a := sparse.FromDense([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 1},
	})
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Factorize(a, sym, Options{}); !errors.Is(err, ErrZeroPivot) {
		t.Errorf("no replacement: got %v, want ErrZeroPivot", err)
	}
	f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatalf("with replacement: %v", err)
	}
	if f.TinyPivots == 0 {
		t.Error("no tiny pivots recorded for zero diagonal")
	}
	if len(f.PivotMods) != f.TinyPivots {
		t.Error("PivotMods length disagrees with TinyPivots")
	}
}

func TestGESPAggressiveReplacement(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{1e-30, 5, 0},
		{2, 1, 0},
		{0, 0, 3},
	})
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, err := Factorize(a, sym, Options{ReplaceTinyPivot: true, Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.TinyPivots != 1 {
		t.Fatalf("TinyPivots = %d, want 1", f.TinyPivots)
	}
	m := f.PivotMods[0]
	if m.Col != 0 || math.Abs(m.New) != 2 {
		t.Errorf("aggressive replacement = %+v, want column max magnitude 2 at col 0", m)
	}
}

func TestGEPPMatchesDenseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		// No diagonal dominance: partial pivoting must still solve it.
		tr := sparse.NewTriplet(n, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i == j || rng.Float64() < 0.25 {
					tr.Append(i, j, rng.NormFloat64())
				}
			}
		}
		a := tr.ToCSC()
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MatVec(b, want)
		f, err := GEPP(a)
		if err != nil {
			continue // randomly singular: acceptable, skip
		}
		got := f.SolvePerm(b)
		if e := sparse.RelErrInf(got, want); e > 1e-6 {
			t.Fatalf("trial %d: GEPP relative error %g", trial, e)
		}
	}
}

func TestGEPPPivotsOnLargeEntry(t *testing.T) {
	// Classic example where no-pivoting is catastrophically unstable but
	// GEPP is fine.
	a := sparse.FromDense([][]float64{
		{1e-16, 1},
		{1, 1},
	})
	b := []float64{1 + 1e-16, 2}
	want := []float64{1, 1}
	f, err := GEPP(a)
	if err != nil {
		t.Fatal(err)
	}
	got := f.SolvePerm(b)
	if e := sparse.RelErrInf(got, want); e > 1e-12 {
		t.Errorf("GEPP error %g on the stability canary", e)
	}
	// The first pivot must be row 1 (the entry 1, not 1e-16).
	if f.RowPerm[1] != 0 {
		t.Errorf("RowPerm = %v; partial pivoting should pick row 1 first", f.RowPerm)
	}
}

func TestGEPPSingular(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{1, 1, 1},
	})
	if _, err := GEPP(a); !errors.Is(err, ErrSingular) {
		t.Errorf("got %v, want ErrSingular", err)
	}
}

func TestGEPPRowPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		a := randomSolvable(rng, n, 0.3)
		fac, err := GEPP(a)
		if err != nil {
			return false
		}
		return sparse.CheckPerm(fac.RowPerm, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGESPvsGEPPOnDiagDominant(t *testing.T) {
	// On a diagonally dominant matrix both must reach near machine
	// precision and GEPP must not pivot off the diagonal.
	rng := rand.New(rand.NewSource(47))
	n := 50
	a := randomSolvable(rng, n, 0.1)
	want := make([]float64, n)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, n)
	a.MatVec(b, want)

	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	fs, err := Factorize(a, sym, Options{ReplaceTinyPivot: true})
	if err != nil {
		t.Fatal(err)
	}
	xs := append([]float64(nil), b...)
	fs.Solve(xs)

	fp, err := GEPP(a)
	if err != nil {
		t.Fatal(err)
	}
	xp := fp.SolvePerm(b)

	es, ep := sparse.RelErrInf(xs, want), sparse.RelErrInf(xp, want)
	if es > 1e-12 || ep > 1e-12 {
		t.Errorf("errors GESP=%g GEPP=%g, want both tiny", es, ep)
	}
}

func TestReciprocalPivotGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randomSolvable(rng, 30, 0.2)
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	f, err := Factorize(a, sym, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rpg := f.ReciprocalPivotGrowth()
	if rpg <= 0 || rpg > 1+1e-12 {
		t.Errorf("reciprocal pivot growth = %g, want in (0,1]", rpg)
	}
}

func TestFactorizeDimensionMismatch(t *testing.T) {
	a := sparse.Identity(3)
	sym, _ := symbolic.Factorize(a, symbolic.Options{})
	b := sparse.Identity(4)
	if _, err := Factorize(b, sym, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestZeroPivotErrorCarriesColumnAndThreshold(t *testing.T) {
	// The structurally fine but numerically zero pivot sits in column 0;
	// the typed error must name it and the threshold in force, while
	// errors.Is keeps matching the historical sentinel.
	a := sparse.FromDense([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 1},
	})
	sym, err := symbolic.Factorize(a, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Factorize(a, sym, Options{})
	if err == nil {
		t.Fatal("zero pivot accepted without replacement")
	}
	var zp *ZeroPivotError
	if !errors.As(err, &zp) {
		t.Fatalf("error %T is not a *ZeroPivotError: %v", err, err)
	}
	if zp.Col != 0 {
		t.Errorf("Col = %d, want 0", zp.Col)
	}
	if want := math.Sqrt(Eps) * a.Norm1(); zp.Threshold != want {
		t.Errorf("Threshold = %g, want %g", zp.Threshold, want)
	}
	if !errors.Is(err, ErrZeroPivot) {
		t.Error("typed error no longer matches the ErrZeroPivot sentinel")
	}
}
