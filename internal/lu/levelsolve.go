package lu

import (
	"sync"
)

// Level-scheduled triangular solves: the paper's §5 points at graph
// coloring / level scheduling (Jones & Plassmann) to expose parallelism
// in the triangular solves. The dependency graph of the forward solve is
// the column elimination DAG of L: x(j) may be computed once every x(k)
// with L(j,k) != 0 is done. Grouping columns by longest-path depth
// ("levels") makes every column within a level independent, so a level
// can be solved by parallel workers with one barrier per level.

// LevelSchedule holds the level decomposition of the L (forward) and U
// (backward) dependency DAGs.
type LevelSchedule struct {
	// LLevels[d] lists the columns at forward-solve depth d.
	LLevels [][]int
	// ULevels[d] lists the columns at backward-solve depth d (depth 0 =
	// column n-1's level, solved first).
	ULevels [][]int
}

// NewLevelSchedule computes both level decompositions from the factors'
// static structure.
func (f *Factors) NewLevelSchedule() *LevelSchedule {
	sym := f.Sym
	n := sym.N
	ls := &LevelSchedule{}

	// Forward: x(i) depends on x(j) when L(i,j) != 0 (i > j). Level(i) =
	// 1 + max level over dependencies; computed by propagating along L
	// columns in ascending order.
	depth := make([]int, n)
	maxD := 0
	for j := 0; j < n; j++ {
		dj := depth[j]
		if dj > maxD {
			maxD = dj
		}
		for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
			if i := sym.LInd[q]; depth[i] < dj+1 {
				depth[i] = dj + 1
			}
		}
	}
	ls.LLevels = make([][]int, maxD+1)
	for j := 0; j < n; j++ {
		ls.LLevels[depth[j]] = append(ls.LLevels[depth[j]], j)
	}

	// Backward: x(k) depends on x(j) when U(k,j) != 0 (k < j). Propagate
	// in descending column order.
	for i := range depth {
		depth[i] = 0
	}
	maxD = 0
	for j := n - 1; j >= 0; j-- {
		dj := depth[j]
		if dj > maxD {
			maxD = dj
		}
		hi := sym.UPtr[j+1] - 1 // skip the diagonal
		for p := sym.UPtr[j]; p < hi; p++ {
			if k := sym.UInd[p]; depth[k] < dj+1 {
				depth[k] = dj + 1
			}
		}
	}
	ls.ULevels = make([][]int, maxD+1)
	for j := 0; j < n; j++ {
		ls.ULevels[depth[j]] = append(ls.ULevels[depth[j]], j)
	}
	return ls
}

// NumLevels reports the parallel step counts (forward, backward); the
// smaller relative to n, the more parallelism level scheduling exposes.
func (ls *LevelSchedule) NumLevels() (fwd, bwd int) {
	return len(ls.LLevels), len(ls.ULevels)
}

// ParallelSolve overwrites x with A⁻¹x using level-scheduled shared-memory
// parallelism across the given number of workers. Note the scatter
// direction: the column-oriented data structure makes x(j) push updates
// to later rows, so within a level each worker owns disjoint target
// accumulations via per-worker buffers merged at the barrier.
func (f *Factors) ParallelSolve(ls *LevelSchedule, x []float64, workers int) {
	if workers < 1 {
		workers = 1
	}
	sym := f.Sym
	n := sym.N

	// Forward solve. Per-worker delta buffers avoid write conflicts when
	// two columns in a level update the same later row; touched-index
	// lists keep the merge proportional to the work done, not to n.
	deltas := make([][]float64, workers)
	touched := make([][]int, workers)
	for w := range deltas {
		deltas[w] = make([]float64, n)
	}
	runLevel := func(cols []int, body func(w int, j int)) {
		if len(cols) < 2*workers || workers == 1 {
			for _, j := range cols {
				body(0, j)
			}
			return
		}
		var wg sync.WaitGroup
		chunk := (len(cols) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(cols) {
				hi = len(cols)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for _, j := range cols[lo:hi] {
					body(w, j)
				}
			}(w, lo, hi)
		}
		wg.Wait()
	}
	merge := func() {
		for w := range deltas {
			d := deltas[w]
			for _, i := range touched[w] {
				x[i] += d[i]
				d[i] = 0
			}
			touched[w] = touched[w][:0]
		}
	}

	for _, cols := range ls.LLevels {
		runLevel(cols, func(w, j int) {
			xj := x[j] // finalized: all dependencies are in earlier levels
			if xj == 0 {
				return
			}
			d := deltas[w]
			for q := sym.LPtr[j]; q < sym.LPtr[j+1]; q++ {
				i := sym.LInd[q]
				if d[i] == 0 {
					touched[w] = append(touched[w], i)
				}
				d[i] -= f.LVal[q] * xj
			}
		})
		merge()
	}

	for _, cols := range ls.ULevels {
		runLevel(cols, func(w, j int) {
			hi := sym.UPtr[j+1] - 1
			xj := x[j] / f.UVal[hi]
			x[j] = xj
			if xj == 0 {
				return
			}
			d := deltas[w]
			for p := sym.UPtr[j]; p < hi; p++ {
				k := sym.UInd[p]
				if d[k] == 0 {
					touched[w] = append(touched[w], k)
				}
				d[k] -= f.UVal[p] * xj
			}
		})
		merge()
	}
}
