package lu

// Multi-RHS triangular solves. The serving layer batches queued solve
// requests against one factorization into a single column-blocked sweep:
// each factor column's indices and values are loaded once and applied to
// every right-hand side in the block, instead of re-walking L and U per
// RHS as repeated Solve calls would. Per-RHS arithmetic is identical to
// SolveL/SolveU (same updates in the same order), so each column of the
// result is bitwise equal to the corresponding single-RHS solve.

// rhsBlock caps how many right-hand sides one sweep carries. The block
// of vectors must stay cache-resident while a factor column streams
// through; 8 doubles per updated row keeps the working set near one
// cache line per row touched.
const rhsBlock = 8

// SolveMulti overwrites the nrhs right-hand sides packed column-major in
// x (vector r occupies x[r*n : (r+1)*n]) with A⁻¹ applied to each, where
// n = f.Sym.N. It is the batched equivalent of calling Solve on every
// vector and allocates nothing.
//
//gesp:hotpath
func (f *Factors) SolveMulti(x []float64, nrhs int) {
	n := f.Sym.N
	for r0 := 0; r0 < nrhs; r0 += rhsBlock {
		b := nrhs - r0
		if b > rhsBlock {
			b = rhsBlock
		}
		blk := x[r0*n : (r0+b)*n]
		f.solveLMulti(blk, b)
		f.solveUMulti(blk, b)
	}
}

// solveLMulti applies L⁻¹ to b packed vectors: forward substitution with
// the factor column loaded once per block rather than once per RHS.
//
//gesp:hotpath
func (f *Factors) solveLMulti(x []float64, b int) {
	sym := f.Sym
	n := sym.N
	for j := 0; j < n; j++ {
		lo, hi := sym.LPtr[j], sym.LPtr[j+1]
		if lo == hi {
			continue
		}
		for r := 0; r < b; r++ {
			base := r * n
			xj := x[base+j]
			if xj == 0 {
				continue
			}
			for q := lo; q < hi; q++ {
				x[base+sym.LInd[q]] -= f.LVal[q] * xj
			}
		}
	}
}

// solveUMulti applies U⁻¹ to b packed vectors by backward substitution.
//
//gesp:hotpath
func (f *Factors) solveUMulti(x []float64, b int) {
	sym := f.Sym
	n := sym.N
	for j := n - 1; j >= 0; j-- {
		lo, hi := sym.UPtr[j], sym.UPtr[j+1]-1
		d := f.UVal[hi] // diagonal is the last entry of the column
		for r := 0; r < b; r++ {
			base := r * n
			xj := x[base+j] / d
			x[base+j] = xj
			if xj == 0 {
				continue
			}
			for q := lo; q < hi; q++ {
				x[base+sym.UInd[q]] -= f.UVal[q] * xj
			}
		}
	}
}
