package lu

import "gesp/internal/kernels"

// Multi-RHS triangular solves. The serving layer batches queued solve
// requests against one factorization into a single column-blocked sweep:
// each factor column's indices and values are loaded once and applied to
// every right-hand side in the block, instead of re-walking L and U per
// RHS as repeated Solve calls would. Per-RHS arithmetic is identical to
// SolveL/SolveU (same updates in the same order), so each column of the
// result is bitwise equal to the corresponding single-RHS solve — the
// register-blocked kernels preserve that contract, including the
// per-RHS zero-pivot skip (see kernels.SolveSparseLMulti).

// rhsBlock caps how many right-hand sides one sweep carries. The block
// of vectors must stay cache-resident while a factor column streams
// through; 8 doubles per updated row keeps the working set near one
// cache line per row touched.
const rhsBlock = 8

// SolveMulti overwrites the nrhs right-hand sides packed column-major in
// x (vector r occupies x[r*n : (r+1)*n]) with A⁻¹ applied to each, where
// n = f.Sym.N. It is the batched equivalent of calling Solve on every
// vector and allocates nothing.
//
//gesp:hotpath
func (f *Factors) SolveMulti(x []float64, nrhs int) {
	n := f.Sym.N
	sym := f.Sym
	for r0 := 0; r0 < nrhs; r0 += rhsBlock {
		b := nrhs - r0
		if b > rhsBlock {
			b = rhsBlock
		}
		blk := x[r0*n : (r0+b)*n]
		kernels.SolveSparseLMulti(blk, n, b, sym.LPtr, sym.LInd, f.LVal)
		kernels.SolveSparseUMulti(blk, n, b, sym.UPtr, sym.UInd, f.UVal)
	}
}
