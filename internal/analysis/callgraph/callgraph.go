// Package callgraph builds a conservative whole-program call graph
// over every package a gesp-lint run loads: the substrate of the
// interprocedural analyzers (hotalloc-ip, detclock-ip). Resolution is
// class-hierarchy style (CHA):
//
//   - direct calls of declared functions and methods are static edges;
//   - an interface method call gets an edge to every method of that
//     name, on any type anywhere in the program, whose receiver
//     implements the interface;
//   - a call through a function value (variable, parameter, struct
//     field, method value, returned closure) gets an edge to every
//     address-taken function or function literal in the program whose
//     signature is identical to the call's;
//   - calls into packages outside the program (stdlib) become edges to
//     body-less external nodes, so analyzers can apply per-package
//     policies to code they cannot see.
//
// The over-approximation is deliberate: a hot-path or determinism
// verdict must hold for every call the runtime could make, not just the
// ones a sharper pointer analysis would keep. Reflection
// (reflect.Value.Call, method lookup by name) is the one blind spot;
// the project does not use it on any analyzed path.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gesp/internal/analysis"
)

// Kind classifies how a call site was resolved to its callee.
type Kind int

const (
	// Static is a direct call of a declared function, method, or
	// immediately-invoked function literal.
	Static Kind = iota
	// Interface is an interface method dispatch, CHA-resolved to a
	// concrete method.
	Interface
	// Dynamic is a call through a function value, resolved to an
	// address-taken function of identical signature.
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	}
	return "?"
}

// Node is one function in the graph: a declared function or method, a
// function literal, a file's package-level initializer expressions, or
// an external (body-less) function from outside the program.
type Node struct {
	ID int
	// Func is the types object: set for declared functions, methods,
	// and externals; nil for literals and initializer nodes.
	Func *types.Func
	// Decl is the declaration, for declared module functions.
	Decl *ast.FuncDecl
	// Lit is the literal, for function-literal nodes.
	Lit *ast.FuncLit
	// Pkg and File locate module nodes; both are nil for externals.
	Pkg  *analysis.Package
	File *ast.File
	// Parent is the lexically enclosing node of a function literal.
	Parent *Node

	// Out and In are the call edges, in deterministic build order.
	Out []*Edge
	In  []*Edge

	name  string
	inits []ast.Expr // initializer nodes: package-level var values
}

// External reports whether the node's body is outside the program.
func (n *Node) External() bool { return n.Pkg == nil }

// Name is a short human-readable identifier: "kernels.SpAxpy",
// "serve.(*cache).evict", "dist.SolveColumn$1" for the first literal
// inside SolveColumn, "time.Now" for externals.
func (n *Node) Name() string { return n.name }

// Pos is the node's declaration position (NoPos for externals).
func (n *Node) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	case len(n.inits) > 0:
		return n.inits[0].Pos()
	}
	return token.NoPos
}

// HotDecl returns the function declaration whose doc directives govern
// this node: the declaration itself, or — for literals and their
// nests — the declaration lexically enclosing them.
func (n *Node) HotDecl() *ast.FuncDecl {
	for p := n; p != nil; p = p.Parent {
		if p.Decl != nil {
			return p.Decl
		}
	}
	return nil
}

// Walk visits the node's executable code. Nested function literals are
// reported to fn (they are values created here) but not descended into:
// each literal is its own node.
func (n *Node) Walk(fn func(ast.Node) bool) {
	var roots []ast.Node
	switch {
	case n.Decl != nil:
		if n.Decl.Body == nil {
			return
		}
		roots = []ast.Node{n.Decl.Body}
	case n.Lit != nil:
		roots = []ast.Node{n.Lit.Body}
	default:
		for _, e := range n.inits {
			roots = append(roots, e)
		}
	}
	for _, root := range roots {
		ast.Inspect(root, func(nd ast.Node) bool {
			if lit, ok := nd.(*ast.FuncLit); ok {
				fn(lit)
				return false // the literal's body is its own node
			}
			return nd == nil || fn(nd)
		})
	}
}

// Edge is one resolved call: caller invokes callee at Pos.
type Edge struct {
	Caller *Node
	Callee *Node
	Pos    token.Pos
	Kind   Kind
}

// Graph is the whole-program call graph.
type Graph struct {
	Prog *analysis.Program
	// Nodes lists every module node (declared, literal, initializer) in
	// deterministic order; externals are reachable through edges only.
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	byName map[string][]*Node
	ext    map[*types.Func]*Node
}

// NodeOf returns the module node of a declared function, or nil.
func (g *Graph) NodeOf(f *types.Func) *Node { return g.byFunc[f] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(l *ast.FuncLit) *Node { return g.byLit[l] }

// Lookup returns the unique node with the given Name, or nil.
func (g *Graph) Lookup(name string) *Node {
	ns := g.byName[name]
	if len(ns) == 1 {
		return ns[0]
	}
	return nil
}

type cacheKey struct{}

// Of returns the program's call graph, building it on first use and
// sharing it between analyzers through the program's artifact cache.
func Of(prog *analysis.Program) *Graph {
	v, err := prog.Cached(cacheKey{}, func() (any, error) { return Build(prog), nil })
	if err != nil {
		panic(err) // unreachable: the build closure never errors
	}
	return v.(*Graph)
}

// Build constructs the call graph of the program.
func Build(prog *analysis.Program) *Graph {
	b := &builder{
		g: &Graph{
			Prog:   prog,
			byFunc: make(map[*types.Func]*Node),
			byLit:  make(map[*ast.FuncLit]*Node),
			byName: make(map[string][]*Node),
			ext:    make(map[*types.Func]*Node),
		},
		methods: make(map[string][]*Node),
	}
	b.declare()
	for _, n := range b.g.Nodes {
		b.process(n)
	}
	// Processing creates literal nodes; the range above never sees them
	// (its length was fixed at entry), so they queue separately — and
	// literals found inside literals re-enter the same queue.
	for len(b.litQueue) > 0 {
		n := b.litQueue[0]
		b.litQueue = b.litQueue[1:]
		b.process(n)
	}
	b.resolveAll()
	return b.g
}

type poolEntry struct {
	node *Node
	sig  *types.Signature
}

type pending struct {
	caller *Node
	call   *ast.CallExpr
}

type builder struct {
	g        *Graph
	methods  map[string][]*Node // declared methods by name, for CHA
	pool     []poolEntry        // address-taken functions and literals
	pooled   map[*Node]bool
	pendings []pending
	litQueue []*Node
}

// declare creates the declared-function and initializer nodes of every
// package, and indexes methods for CHA resolution.
func (b *builder) declare() {
	b.pooled = make(map[*Node]bool)
	for _, pkg := range b.g.Prog.Pkgs {
		for _, f := range pkg.Files {
			var inits []ast.Expr
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					n := b.add(&Node{
						Func: fn, Decl: d, Pkg: pkg, File: f,
						name: declName(pkg, fn),
					})
					b.g.byFunc[fn] = n
					if d.Recv != nil {
						b.methods[d.Name.Name] = append(b.methods[d.Name.Name], n)
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						inits = append(inits, vs.Values...)
					}
				}
			}
			if len(inits) > 0 {
				b.add(&Node{
					Pkg: pkg, File: f, inits: inits,
					name: shortPkg(pkg.Path) + ".init:" + baseName(pkg.Fset.Position(f.Pos()).Filename),
				})
			}
		}
	}
}

func (b *builder) add(n *Node) *Node {
	n.ID = len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.byName[n.name] = append(b.g.byName[n.name], n)
	return n
}

// process records the node's call sites and address-taken function
// references, creating nodes for the literals it contains.
func (b *builder) process(n *Node) {
	// Prepass: mark expressions in call-function position and the Sel
	// identifiers of selector expressions, so the reference pass can
	// recognize a function mentioned *as a value*.
	callFuns := make(map[ast.Node]bool)
	selSels := make(map[*ast.Ident]bool)
	n.Walk(func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.CallExpr:
			callFuns[stripFun(x.Fun)] = true
			b.pendings = append(b.pendings, pending{n, x})
		case *ast.SelectorExpr:
			selSels[x.Sel] = true
		}
		return true
	})
	info := n.Pkg.Info
	litSeq := 0
	n.Walk(func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			litSeq++
			ln := b.add(&Node{
				Lit: x, Pkg: n.Pkg, File: n.File, Parent: n,
				name: fmt.Sprintf("%s$%d", n.name, litSeq),
			})
			b.g.byLit[x] = ln
			b.litQueue = append(b.litQueue, ln)
			if !callFuns[x] {
				b.addPool(ln, info.TypeOf(x))
			}
		case *ast.SelectorExpr:
			if callFuns[x] {
				return true
			}
			if sel, ok := info.Selections[x]; ok {
				if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
					b.addPool(b.nodeFor(sel.Obj().(*types.Func)), info.TypeOf(x))
				}
				return true
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				b.addPool(b.nodeFor(fn), info.TypeOf(x))
			}
		case *ast.Ident:
			if callFuns[x] || selSels[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				b.addPool(b.nodeFor(fn), info.TypeOf(x))
			}
		}
		return true
	})
}

func (b *builder) addPool(n *Node, t types.Type) {
	if n == nil || b.pooled[n] {
		return
	}
	sig, ok := t.(*types.Signature)
	if !ok {
		return
	}
	b.pooled[n] = true
	b.pool = append(b.pool, poolEntry{node: n, sig: sig})
}

// nodeFor returns the module node of fn, or a memoized external node.
func (b *builder) nodeFor(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	if n, ok := b.g.byFunc[fn]; ok {
		return n
	}
	if n, ok := b.g.ext[fn]; ok {
		return n
	}
	n := &Node{Func: fn, name: fn.FullName()}
	b.g.ext[fn] = n
	return n
}

// resolveAll turns the recorded call sites into edges. It runs after
// every node has been processed, so the address-taken pool and the
// method index are complete.
func (b *builder) resolveAll() {
	for _, p := range b.pendings {
		b.resolve(p)
	}
}

func (b *builder) resolve(p pending) {
	info := p.caller.Pkg.Info
	fun := stripFun(p.call.Fun)
	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[x].(type) {
		case *types.Builtin, *types.TypeName, *types.Nil:
			return // builtins are local facts; T(x) is a conversion
		case *types.Func:
			b.addEdge(p, b.nodeFor(obj), Static)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					b.chaEdges(p, sel.Recv().Underlying().(*types.Interface), m)
				} else {
					b.addEdge(p, b.nodeFor(m), Static)
				}
				return
			case types.MethodExpr:
				b.addEdge(p, b.nodeFor(sel.Obj().(*types.Func)), Static)
				return
			}
			// FieldVal of function type: dynamic, below.
		} else {
			switch obj := info.Uses[x.Sel].(type) {
			case *types.Builtin, *types.TypeName:
				return // unsafe.X, pkg.Type(x)
			case *types.Func:
				b.addEdge(p, b.nodeFor(obj), Static)
				return
			}
		}
	case *ast.FuncLit:
		b.addEdge(p, b.g.byLit[x], Static)
		return
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType,
		*ast.StructType, *ast.InterfaceType, *ast.StarExpr:
		return // conversion to a composite type
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return // conversion through a parenthesized or aliased type
	}
	// A call through a function value: dispatch to every address-taken
	// function of identical signature.
	sig, ok := info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	for _, ent := range b.pool {
		if types.Identical(ent.sig, sig) {
			b.addEdge(p, ent.node, Dynamic)
		}
	}
}

// chaEdges adds one edge per concrete method in the program that the
// interface call could dispatch to.
func (b *builder) chaEdges(p pending, iface *types.Interface, m *types.Func) {
	for _, cand := range b.methods[m.Name()] {
		recv := cand.Func.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if types.Implements(t, iface) ||
			(!isPointer(t) && types.Implements(types.NewPointer(t), iface)) {
			b.addEdge(p, cand, Interface)
		}
	}
}

func (b *builder) addEdge(p pending, callee *Node, kind Kind) {
	if callee == nil {
		return
	}
	e := &Edge{Caller: p.caller, Callee: callee, Pos: p.call.Pos(), Kind: kind}
	p.caller.Out = append(p.caller.Out, e)
	callee.In = append(callee.In, e)
}

// stripFun unwraps parentheses and generic instantiation from a call's
// function expression.
func stripFun(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func baseName(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}

// declName renders "pkg.Func" or "pkg.(*Recv).Method".
func declName(pkg *analysis.Package, fn *types.Func) string {
	short := shortPkg(pkg.Path)
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		qual := func(p *types.Package) string { return "" }
		return fmt.Sprintf("%s.(%s).%s", short, types.TypeString(rt, qual), fn.Name())
	}
	return short + "." + fn.Name()
}
