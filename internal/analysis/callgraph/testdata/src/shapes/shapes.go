package shapes

// Shape is dispatched through an interface in the cgfix fixture; the
// call graph must add CHA edges to both implementations below.
type Shape interface{ Area() float64 }

// Circle implements Shape with a value receiver: both Circle and
// *Circle satisfy the interface.
type Circle struct{ R float64 }

func (c Circle) Area() float64 { return 3 * c.R * c.R }

// Square implements Shape with a pointer receiver: only *Square
// satisfies the interface.
type Square struct{ S float64 }

func (s *Square) Area() float64 { return s.S * s.S }
