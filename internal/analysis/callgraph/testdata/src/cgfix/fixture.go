// Package cgfix exercises every call shape the graph builder must
// resolve: interface dispatch, method values, closures passed as
// arguments, function-typed struct fields, and address-taken functions
// called through variables.
package cgfix

import "shapes"

// Total dispatches through the Shape interface: CHA edges to every
// implementation in the program.
func Total(ss []shapes.Shape) float64 {
	t := 0.0
	for _, s := range ss {
		t += s.Area()
	}
	return t
}

// Each calls through a function-typed parameter: dynamic edges to every
// address-taken func(int) in the program.
func Each(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

var sink int

// AddSink is address-taken in UseEachNamed, so it joins the dynamic
// dispatch pool for func(int) calls.
func AddSink(x int) { sink += x }

// UseEach passes a closure into Each.
func UseEach(xs []int) {
	Each(xs, func(x int) { sink += x })
}

// UseEachNamed passes a named function into Each.
func UseEachNamed(xs []int) {
	Each(xs, AddSink)
}

// handler carries a function-typed field.
type handler struct {
	cb func() int
}

func codeA() int { return 1 }
func codeB() int { return 2 }

// NewHandler stores codeA in a function-typed field (address-taken).
func NewHandler() handler { return handler{cb: codeA} }

// TakeB address-takes codeB through a local variable.
func TakeB() func() int {
	f := codeB
	return f
}

// Fire calls through the function-typed field: dynamic edges to every
// address-taken func() int (codeA and codeB).
func Fire(h handler) int {
	return h.cb()
}

// MethodValue binds a method value and calls it through a variable:
// a dynamic edge back to the bound method.
func MethodValue(c shapes.Circle) float64 {
	area := c.Area
	return area()
}
