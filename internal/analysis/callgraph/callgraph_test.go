package callgraph_test

import (
	"path/filepath"
	"testing"

	"gesp/internal/analysis"
	"gesp/internal/analysis/callgraph"
)

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join("testdata", "src"), nil)
	if _, err := loader.Load("cgfix"); err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	prog := analysis.NewProgram(loader.Fset(), loader.Loaded())
	return callgraph.Of(prog)
}

// edges returns callee name -> kind for every out-edge of the named
// node, failing the test if the node does not exist.
func edges(t *testing.T, g *callgraph.Graph, from string) map[string]callgraph.Kind {
	t.Helper()
	n := g.Lookup(from)
	if n == nil {
		t.Fatalf("no node named %q", from)
	}
	out := make(map[string]callgraph.Kind)
	for _, e := range n.Out {
		out[e.Callee.Name()] = e.Kind
	}
	return out
}

func wantEdge(t *testing.T, got map[string]callgraph.Kind, from, to string, kind callgraph.Kind) {
	t.Helper()
	k, ok := got[to]
	if !ok {
		t.Errorf("missing edge %s -> %s (have %v)", from, to, got)
		return
	}
	if k != kind {
		t.Errorf("edge %s -> %s has kind %v, want %v", from, to, k, kind)
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	g := buildFixture(t)
	got := edges(t, g, "cgfix.Total")
	wantEdge(t, got, "cgfix.Total", "shapes.(Circle).Area", callgraph.Interface)
	wantEdge(t, got, "cgfix.Total", "shapes.(*Square).Area", callgraph.Interface)
}

func TestClosureArgumentDispatch(t *testing.T) {
	g := buildFixture(t)
	use := edges(t, g, "cgfix.UseEach")
	wantEdge(t, use, "cgfix.UseEach", "cgfix.Each", callgraph.Static)

	// Each's fn(x) dispatches to every address-taken func(int): the
	// closure from UseEach and the named AddSink from UseEachNamed.
	each := edges(t, g, "cgfix.Each")
	wantEdge(t, each, "cgfix.Each", "cgfix.UseEach$1", callgraph.Dynamic)
	wantEdge(t, each, "cgfix.Each", "cgfix.AddSink", callgraph.Dynamic)
}

func TestFunctionFieldDispatch(t *testing.T) {
	g := buildFixture(t)
	got := edges(t, g, "cgfix.Fire")
	wantEdge(t, got, "cgfix.Fire", "cgfix.codeA", callgraph.Dynamic)
	wantEdge(t, got, "cgfix.Fire", "cgfix.codeB", callgraph.Dynamic)
}

func TestMethodValueDispatch(t *testing.T) {
	g := buildFixture(t)
	got := edges(t, g, "cgfix.MethodValue")
	wantEdge(t, got, "cgfix.MethodValue", "shapes.(Circle).Area", callgraph.Dynamic)
}

func TestNoSpuriousEdges(t *testing.T) {
	g := buildFixture(t)
	// Fire calls only func() int values: the method value (func()
	// float64) and func(int) pool entries must not leak in.
	got := edges(t, g, "cgfix.Fire")
	for _, bad := range []string{"shapes.(Circle).Area", "cgfix.AddSink", "cgfix.UseEach$1"} {
		if _, ok := got[bad]; ok {
			t.Errorf("spurious edge cgfix.Fire -> %s", bad)
		}
	}
	// A conversion is not a call: shapes.(*Square).Area has exactly the
	// interface-dispatch caller.
	sq := g.Lookup("shapes.(*Square).Area")
	if sq == nil {
		t.Fatal("no node for shapes.(*Square).Area")
	}
	for _, e := range sq.In {
		if e.Caller.Name() != "cgfix.Total" {
			t.Errorf("unexpected caller of (*Square).Area: %s", e.Caller.Name())
		}
	}
}
