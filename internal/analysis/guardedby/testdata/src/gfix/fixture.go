// Package gfix exercises guardedby: lock-held tracking across defers,
// early returns, and branches; //gesp:holds helper contracts; waiver
// justification; and mixed atomic/plain field access.
package gfix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	//gesp:guardedby:mu
	n int
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Bad() int {
	return c.n // want `c\.n is //gesp:guardedby:mu, but c\.mu is not held here`
}

func (c *counter) DeferOK() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// EarlyReturn must not poison the fall-through path: the unlock inside
// the terminating branch leaves the lock held below.
func (c *counter) EarlyReturn(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// BranchyUnlock releases on one non-terminating branch, so the merged
// state below is unlocked.
func (c *counter) BranchyUnlock(flip bool) {
	c.mu.Lock()
	if flip {
		c.mu.Unlock()
	}
	c.n++ // want `c\.n is //gesp:guardedby:mu, but c\.mu is not held here`
	_ = flip
}

// bump runs under the caller's lock.
//
//gesp:holds:c.mu
func (c *counter) bump() { c.n++ }

func (c *counter) UseBumpLocked() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

func (c *counter) UseBumpUnlocked() {
	c.bump() // want `bump declares //gesp:holds:c\.mu, but c\.mu is not held at this call`
}

// NewCounter may touch fields plainly: the value has not escaped yet.
func NewCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// Snapshot is waived with a reason: silent.
func (c *counter) Snapshot() int {
	return c.n //gesp:unsync read-only snapshot taken before the workers start
}

func (c *counter) BareWaiver() int {
	//gesp:unsync
	return c.n // want `//gesp:unsync without justification`
}

type rw struct {
	mu sync.RWMutex
	//gesp:guardedby:mu
	m map[string]int
}

// Get holds the read lock: RLock counts as held.
func (r *rw) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

type broken struct {
	//gesp:guardedby:lock
	x int // want `//gesp:guardedby:lock names no sibling sync\.Mutex or sync\.RWMutex field`
}

type stats struct {
	hits int64
}

func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }

func (s *stats) Dump() int64 {
	return s.hits // want `s\.hits is updated through sync/atomic elsewhere but accessed plainly here`
}
