package guardedby_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/guardedby"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guardedby.Analyzer, "gfix")
}
