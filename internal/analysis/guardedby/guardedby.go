// Package guardedby checks declared lock disciplines. A struct field
// annotated //gesp:guardedby:<mu> (doc comment above or line comment
// beside the field) may only be accessed while <mu> — a sibling
// sync.Mutex or sync.RWMutex field — is held. The analyzer walks each
// function with a branch-sensitive lock-held set: X.Lock()/X.RLock()
// acquire, X.Unlock()/X.RUnlock() release, a deferred unlock holds to
// function end, and an early-return branch that unlocks does not poison
// the fall-through path. Helpers that run under a caller's lock declare
// it with //gesp:holds:<recv>.<mu>, which is assumed on entry and
// checked at every static call site.
//
// The analyzer also flags mixed atomic/plain access: a field updated
// through sync/atomic (atomic.AddInt64(&x.f, ...)) must not also be
// read or written plainly — that hides a data race from both the
// mutex and the atomic discipline.
//
// Intentional exceptions (single-goroutine setup, test-only accessors)
// are waived per site with //gesp:unsync plus a reason; a bare waiver
// is itself a diagnostic. Accesses through variables local to the
// current function are skipped: a struct that has not escaped its
// constructor cannot be shared.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gesp/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "check //gesp:guardedby:<mu> field disciplines against a lock-held walk, " +
		"//gesp:holds:<mu> helper contracts, and mixed atomic/plain field access",
	Run: run,
}

type waiverUse struct {
	at        token.Pos
	justified bool
}

type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Var]string // field -> sibling mutex field name
	atomic  map[*types.Var]bool   // fields passed as &x.f to sync/atomic
	// atomicArgs are the &x.f selector sites themselves, excluded from
	// plain-access reporting.
	atomicArgs map[*ast.SelectorExpr]bool
	decls      map[*types.Func]*ast.FuncDecl
	dirs       map[*ast.File]*analysis.Directives
	waivers    map[token.Pos]waiverUse
	// lits queues function literals for analysis under an empty held
	// set, unless already analyzed as an immediately-invoked literal.
	lits []*ast.FuncLit
	done map[*ast.FuncLit]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		guarded:    make(map[*types.Var]string),
		atomic:     make(map[*types.Var]bool),
		atomicArgs: make(map[*ast.SelectorExpr]bool),
		decls:      make(map[*types.Func]*ast.FuncDecl),
		dirs:       make(map[*ast.File]*analysis.Directives),
		waivers:    make(map[token.Pos]waiverUse),
		done:       make(map[*ast.FuncLit]bool),
	}
	for _, f := range pass.Files {
		c.collect(f)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{c: c, file: f, fn: fd}
			held := make(map[string]bool)
			for _, d := range analysis.FuncDirectives(fd) {
				if d.Name == "holds" && d.Arg != "" {
					held[d.Arg] = true
				}
			}
			w.stmts(fd.Body.List, held)
			for len(c.lits) > 0 {
				lit := c.lits[0]
				c.lits = c.lits[1:]
				if !c.done[lit] {
					c.done[lit] = true
					(&walker{c: c, file: f, fn: fd}).stmts(lit.Body.List, make(map[string]bool))
				}
			}
		}
	}
	for _, w := range c.waivers { //gesp:unordered
		if !w.justified {
			c.pass.Reportf(w.at, "//gesp:unsync without justification; "+
				"say why the unsynchronized access is safe, inline or on the line above")
		}
	}
	return nil
}

// collect gathers guarded-field annotations, function declarations, and
// atomic field uses from one file.
func (c *checker) collect(f *ast.File) {
	dirs := c.fileDirs(f)
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if fn, ok := c.pass.TypesInfo.Defs[x.Name].(*types.Func); ok {
				c.decls[fn] = x
			}
		case *ast.StructType:
			c.collectStruct(dirs, x)
		case *ast.CallExpr:
			c.collectAtomic(x)
		}
		return true
	})
}

func (c *checker) collectStruct(dirs *analysis.Directives, st *ast.StructType) {
	for _, field := range st.Fields.List {
		dir, ok := dirs.Find(field.Pos(), "guardedby")
		if !ok {
			continue
		}
		if dir.Arg == "" {
			c.pass.Reportf(field.Pos(), "//gesp:guardedby needs a mutex field argument (//gesp:guardedby:mu)")
			continue
		}
		if !structHasMutex(st, dir.Arg) {
			c.pass.Reportf(field.Pos(),
				"//gesp:guardedby:%s names no sibling sync.Mutex or sync.RWMutex field", dir.Arg)
			continue
		}
		for _, name := range field.Names {
			if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
				c.guarded[v] = dir.Arg
			}
		}
	}
}

// collectAtomic records fields whose address feeds a sync/atomic call.
func (c *checker) collectAtomic(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		u, ok := arg.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		fsel, ok := u.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if v := c.fieldOf(fsel); v != nil {
			c.atomic[v] = true
			c.atomicArgs[fsel] = true
		}
	}
}

// fieldOf returns the struct field a selector resolves to, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok {
		return v
	}
	return nil
}

func structHasMutex(st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return isMutexExpr(field.Type)
			}
		}
	}
	return false
}

func isMutexExpr(e ast.Expr) bool {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			n, ok = p.Elem().(*types.Named)
			if !ok {
				return false
			}
		} else {
			return false
		}
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func (c *checker) fileDirs(f *ast.File) *analysis.Directives {
	d, ok := c.dirs[f]
	if !ok {
		d = analysis.FileDirectives(c.pass.Fset, f)
		c.dirs[f] = d
	}
	return d
}

// waived honors a justified //gesp:unsync at pos, recording bare ones.
func (c *checker) waived(f *ast.File, pos token.Pos) bool {
	d := c.fileDirs(f)
	dir, ok := d.Find(pos, "unsync")
	if !ok {
		return false
	}
	if _, seen := c.waivers[dir.Pos]; !seen {
		c.waivers[dir.Pos] = waiverUse{at: pos, justified: d.Justified(dir)}
	}
	return true
}

// walker carries the per-function lock-held state.
type walker struct {
	c    *checker
	file *ast.File
	fn   *ast.FuncDecl
}

type held = map[string]bool

func clone(h held) held {
	out := make(held, len(h))
	for k := range h { //gesp:unordered
		out[k] = true
	}
	return out
}

func intersect(a, b held) held {
	out := make(held)
	for k := range a { //gesp:unordered
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// stmts walks a statement list sequentially, returning the lock set
// held after it.
func (w *walker) stmts(list []ast.Stmt, h held) held {
	for _, s := range list {
		h = w.stmt(s, h)
	}
	return h
}

func (w *walker) stmt(s ast.Stmt, h held) held {
	switch x := s.(type) {
	case nil:
		return h
	case *ast.BlockStmt:
		return w.stmts(x.List, h)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, h)
	case *ast.IfStmt:
		h = w.stmt(x.Init, h)
		w.scan(x.Cond, h)
		thenH := w.stmts(x.Body.List, clone(h))
		thenTerm := terminates(x.Body.List)
		elseH, elseTerm := h, false
		if x.Else != nil {
			elseH = w.stmt(x.Else, clone(h))
			elseTerm = terminatesStmt(x.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return h // fall-through is unreachable
		case thenTerm:
			return elseH
		case elseTerm:
			return thenH
		default:
			return intersect(thenH, elseH)
		}
	case *ast.ForStmt:
		h = w.stmt(x.Init, h)
		w.scan(x.Cond, h)
		body := w.stmts(x.Body.List, clone(h))
		body = w.stmt(x.Post, body)
		return intersect(h, body)
	case *ast.RangeStmt:
		w.scan(x.X, h)
		return intersect(h, w.stmts(x.Body.List, clone(h)))
	case *ast.SwitchStmt:
		h = w.stmt(x.Init, h)
		w.scan(x.Tag, h)
		return w.clauses(x.Body.List, h)
	case *ast.TypeSwitchStmt:
		h = w.stmt(x.Init, h)
		w.scanStmtExprs(x.Assign, h)
		return w.clauses(x.Body.List, h)
	case *ast.SelectStmt:
		return w.clauses(x.Body.List, h)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end; any
		// other deferred work runs outside the current lock regime.
		if w.lockEffect(x.Call) == nil {
			w.scan(x.Call, h)
		}
		return h
	case *ast.GoStmt:
		w.scan(x.Call, h)
		return h
	default:
		w.scanStmtExprs(s, h)
		return w.applyEffects(s, h)
	}
}

// clauses walks case/comm clause bodies and merges their exit states.
func (w *walker) clauses(list []ast.Stmt, h held) held {
	after := h
	for _, cl := range list {
		var body []ast.Stmt
		switch x := cl.(type) {
		case *ast.CaseClause:
			for _, e := range x.List {
				w.scan(e, h)
			}
			body = x.Body
		case *ast.CommClause:
			h = w.stmt(x.Comm, h)
			body = x.Body
		default:
			continue
		}
		r := w.stmts(body, clone(h))
		if !terminates(body) {
			after = intersect(after, r)
		}
	}
	return after
}

// scanStmtExprs checks the guarded accesses of a leaf statement.
func (w *walker) scanStmtExprs(s ast.Stmt, h held) {
	w.scan(s, h)
}

// scan inspects an expression (or leaf statement) for guarded-field and
// atomic-mixed accesses, queueing nested function literals.
func (w *walker) scan(n ast.Node, h held) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			w.c.lits = append(w.c.lits, x)
			return false
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				// An immediately-invoked literal runs under the
				// caller's locks.
				w.c.done[lit] = true
				(&walker{c: w.c, file: w.file, fn: w.fn}).stmts(lit.Body.List, clone(h))
				for _, arg := range x.Args {
					w.scan(arg, h)
				}
				return false
			}
			w.checkHoldsCall(x, h)
		case *ast.SelectorExpr:
			w.checkAccess(x, h)
		}
		return true
	})
}

// checkAccess verifies one field selector against the guarded and
// atomic disciplines.
func (w *walker) checkAccess(sel *ast.SelectorExpr, h held) {
	v := w.c.fieldOf(sel)
	if v == nil || w.localBase(sel.X) {
		return
	}
	if mu, ok := w.c.guarded[v]; ok {
		want := types.ExprString(sel.X) + "." + mu
		if !h[want] && !w.c.waived(w.file, sel.Pos()) {
			w.c.pass.Reportf(sel.Pos(),
				"%s is //gesp:guardedby:%s, but %s is not held here; lock it, declare "+
					"//gesp:holds:%s on the enclosing helper, or waive with //gesp:unsync + reason",
				types.ExprString(sel), mu, want, want)
		}
	}
	if w.c.atomic[v] && !w.c.atomicArgs[sel] && !w.c.waived(w.file, sel.Pos()) {
		w.c.pass.Reportf(sel.Pos(),
			"%s is updated through sync/atomic elsewhere but accessed plainly here; "+
				"use atomic ops consistently or waive with //gesp:unsync + reason",
			types.ExprString(sel))
	}
}

// checkHoldsCall verifies //gesp:holds contracts at static call sites:
// x.helper() with helper declaring //gesp:holds:r.mu requires x.mu.
func (w *walker) checkHoldsCall(call *ast.CallExpr, h held) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	decl, ok := w.c.decls[fn]
	if !ok {
		return
	}
	for _, d := range analysis.FuncDirectives(decl) {
		if d.Name != "holds" || d.Arg == "" {
			continue
		}
		_, mu, ok := strings.Cut(d.Arg, ".")
		if !ok {
			continue
		}
		want := types.ExprString(sel.X) + "." + mu
		if !h[want] && !w.c.waived(w.file, call.Pos()) {
			w.c.pass.Reportf(call.Pos(),
				"%s declares //gesp:holds:%s, but %s is not held at this call",
				fn.Name(), d.Arg, want)
		}
	}
}

// localBase reports whether the access base is a variable local to the
// current function (declared inside its body): a value that has not
// escaped its constructor cannot be shared, so lock disciplines do not
// apply yet. Parameters and receivers are shared and stay checked.
func (w *walker) localBase(base ast.Expr) bool {
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.Ident:
			obj := w.c.pass.TypesInfo.Uses[x]
			if obj == nil {
				return false
			}
			if _, ok := obj.(*types.Var); !ok {
				return false
			}
			return w.fn.Body != nil && obj.Pos() > w.fn.Body.Lbrace && obj.Pos() < w.fn.Body.Rbrace
		default:
			return false
		}
	}
}

// lockEffect classifies a call as a lock-set mutation: it returns a
// non-nil effect for X.Lock/RLock (acquire) and X.Unlock/RUnlock
// (release) on a sync.Mutex or sync.RWMutex.
type effect struct {
	key     string
	acquire bool
}

func (w *walker) lockEffect(call *ast.CallExpr) *effect {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil
	}
	t := w.c.pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !isMutexType(t) {
		return nil
	}
	return &effect{key: types.ExprString(sel.X), acquire: acquire}
}

// applyEffects folds the lock/unlock calls of a leaf statement into the
// held set, skipping nested literals.
func (w *walker) applyEffects(s ast.Stmt, h held) held {
	ast.Inspect(s, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e := w.lockEffect(call); e != nil {
			if e.acquire {
				h[e.key] = true
			} else {
				delete(h, e.key)
			}
		}
		return true
	})
	return h
}

// terminates reports whether a statement list always transfers control
// away (return, branch, or panic), so code after it is unreachable.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminatesStmt(list[len(list)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(x.List)
	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.IfStmt:
		if x.Else == nil {
			return false
		}
		return terminates(x.Body.List) && terminatesStmt(x.Else)
	}
	return false
}
