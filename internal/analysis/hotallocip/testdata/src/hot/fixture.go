// Package hot exercises hotalloc-ip: //gesp:hotpath roots whose whole
// transitive call closure must be allocation-free, with blame paths
// through static calls, interface dispatch, closures, and externals.
package hot

import (
	"math"
	"strconv"

	"hutil"
)

//gesp:hotpath
func Planted(s []int, v int) []int {
	return hutil.Grow(s, v) // want `allocation reachable from //gesp:hotpath function hot\.Planted: hot\.Planted → hutil\.Grow \(call at fixture\.go:\d+\): append at hutil\.go:\d+`
}

//gesp:hotpath
func Deep(s []int) []int {
	return hutil.Mid(s) // want `hot\.Deep → hutil\.Mid \(call at fixture\.go:\d+\) → hutil\.Grow \(call at hutil\.go:\d+\): append at hutil\.go:\d+`
}

// Clean stays silent: Sum is allocation-free all the way down.
//
//gesp:hotpath
func Clean(s []int) int {
	return hutil.Sum(s)
}

type sizer interface{ size() int }

type fixed struct{}

func (fixed) size() int { return 4 }

type growing struct{ buf []int }

func (g *growing) size() int {
	g.buf = append(g.buf, 1)
	return len(g.buf)
}

// Sizes dispatches through an interface; CHA blames the one
// implementation that allocates.
//
//gesp:hotpath
func Sizes(ss []sizer) int {
	t := 0
	for _, s := range ss {
		t += s.size() // want `hot\.Sizes → hot\.\(\*growing\)\.size \(call at fixture\.go:\d+\): append at fixture\.go:\d+`
	}
	return t
}

// Closured passes an allocating closure into a higher-order helper:
// the blame path runs through the dynamic dispatch inside Apply.
//
//gesp:hotpath
func Closured(s []int) {
	hutil.Apply(func(x int) { // want `hot\.Closured → hutil\.Apply \(call at fixture\.go:\d+\) → hot\.Closured\$1 \(call at hutil\.go:\d+\): append at fixture\.go:\d+`
		s = append(s, x)
	})
}

// Stringify calls outside the program: assumed to allocate.
//
//gesp:hotpath
func Stringify(v int) string {
	return strconv.Itoa(v) // want `hot\.Stringify → strconv\.Itoa \(call at fixture\.go:\d+\): calls strconv\.Itoa \(outside the program; assumed to allocate\)`
}

// Norm calls an allowlisted external (math): silent.
//
//gesp:hotpath
func Norm(x float64) float64 {
	return math.Abs(x)
}

// ColdPath waives the call with a reason: silent.
//
//gesp:hotpath
func ColdPath(s []int) []int {
	return hutil.Grow(s, 9) //gesp:allocok error path only, runs at most once per solve
}

// BareWaiver waives without saying why: the waiver holds but is itself
// reported.
//
//gesp:hotpath
func BareWaiver(s []int) []int {
	//gesp:allocok
	return hutil.Grow(s, 9) // want `//gesp:allocok without justification`
}

// Boxes returns a scalar through an interface result: boxing allocates.
//
//gesp:hotpath
func Boxes(v float64) any {
	return v // want `float64 boxed into interface result inside //gesp:hotpath function hot\.Boxes`
}

func consume(v any) { _ = v }

// BoxParam passes a scalar to an interface parameter: boxing allocates
// at the call site even though consume itself is clean.
//
//gesp:hotpath
func BoxParam(v int) {
	consume(v) // want `int boxed into interface parameter inside //gesp:hotpath function hot\.BoxParam`
}

// Unannotated is not a hot path: no verdict even though it allocates.
func Unannotated(s []int) []int { return hutil.Grow(s, 1) }
