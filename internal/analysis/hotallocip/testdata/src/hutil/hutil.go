// Package hutil provides callees for the hotalloc-ip fixtures,
// including the deliberately-planted allocating callee Grow that the
// crosscheck test also convicts at runtime with testing.AllocsPerRun.
package hutil

// Grow is the planted allocating callee: append may grow the slice.
func Grow(s []int, v int) []int {
	return append(s, v)
}

// Mid adds a hop to the blame path.
func Mid(s []int) []int { return Grow(s, 1) }

// Sum is allocation-free.
func Sum(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// Apply calls through a function-typed parameter: the allocation
// verdict depends on the dynamic dispatch pool.
func Apply(fn func(int)) { fn(0) }
