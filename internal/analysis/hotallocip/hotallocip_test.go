package hotallocip_test

import (
	"path/filepath"
	"testing"

	"gesp/internal/analysis"
	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/hotallocip"
)

func TestFixtures(t *testing.T) {
	analysistest.RunProgram(t, analysistest.TestData(), hotallocip.Analyzer, "hot")
}

// plantedGrow mirrors the fixture's deliberately-planted allocating
// callee (testdata/src/hutil.Grow), so the same code shape is convicted
// both statically (the want expectations above) and dynamically here.
func plantedGrow(s []int, v int) []int { return append(s, v) }

var plantedSink []int

func TestPlantedCalleeAllocatesAtRuntime(t *testing.T) {
	full := []int{1} // len == cap: append must grow
	allocs := testing.AllocsPerRun(100, func() {
		plantedSink = plantedGrow(full, 2)
	})
	if allocs == 0 {
		t.Fatal("planted callee did not allocate at runtime; the static conviction in the fixtures would be vacuous")
	}
}

// TestKernelsAndLUClosureClean cross-checks hotalloc-ip against the
// repo's AllocsPerRun benches: internal/kernels and internal/lu assert
// zero allocations per hot call at runtime, so the static verdict over
// the same closure must also be clean.
func TestKernelsAndLUClosureClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range []string{"gesp/internal/kernels", "gesp/internal/lu"} {
		if _, err := loader.Load(pkg); err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
	}
	prog := analysis.NewProgram(loader.Fset(), loader.Loaded())
	diags, err := analysis.RunProgramAnalyzer(hotallocip.Analyzer, prog)
	if err != nil {
		t.Fatalf("running hotalloc-ip: %v", err)
	}
	for _, d := range diags {
		t.Errorf("hotalloc-ip disagrees with the AllocsPerRun benches: %s: %s",
			prog.Fset.Position(d.Pos), d.Message)
	}
}
