// Package hotallocip is the interprocedural extension of hotalloc: the
// //gesp:hotpath contract must hold for the *transitive call closure*
// of an annotated kernel, not just its own body. The intraprocedural
// hotalloc analyzer flags allocations written directly inside an
// annotated function; this one walks the whole-program call graph and
// flags every reachable callee that may allocate — append/make/new,
// composite literals, closure capture, interface boxing, allocating
// conversions, string concatenation, variadic packing — with a
// per-edge blame path from the annotated root down to the offending
// statement.
//
// Calls that leave the program (stdlib) are assumed to allocate unless
// the callee's package is on the allocation-free allowlist (math,
// math/bits, sync, sync/atomic, and the sort.Search* family): the
// analyzer cannot see those bodies, and a hot kernel has no business
// calling anything heavier. A call the author knows to be safe (or
// intentionally cold, e.g. a panic-path formatter) is waived with
// //gesp:allocok on the call line plus a reason; a bare waiver is
// itself a diagnostic.
package hotallocip

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"gesp/internal/analysis"
	"gesp/internal/analysis/callgraph"
	"gesp/internal/analysis/summary"
)

// Analyzer is the hotalloc-ip check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "hotalloc-ip",
	Doc: "verify the transitive call closure of every //gesp:hotpath function is " +
		"allocation-free, with per-edge blame paths; waive call sites with //gesp:allocok + reason",
	Run: run,
}

// allowedPkgs are external packages whose functions are assumed
// allocation-free: pure arithmetic and lock/atomic primitives.
var allowedPkgs = map[string]bool{
	"math": true, "math/bits": true, "sync": true, "sync/atomic": true,
}

// allowedFuncs are individually-allowlisted externals.
var allowedFuncs = map[string]bool{
	"sort.Search": true, "sort.SearchInts": true,
	"sort.SearchFloat64s": true, "sort.SearchStrings": true,
}

type site struct {
	pos  token.Pos
	what string
	// covered marks allocation kinds the intraprocedural hotalloc
	// already reports inside annotated functions; hotalloc-ip skips
	// them at the root to avoid duplicate findings.
	covered bool
}

type waiverUse struct {
	dir       analysis.Directive
	at        token.Pos // the waived site: where an unjustified waiver is reported
	justified bool
}

type checker struct {
	pass    *analysis.ProgramPass
	g       *callgraph.Graph
	dirs    map[*ast.File]*analysis.Directives
	sites   map[*callgraph.Node][]site
	waivers map[token.Pos]waiverUse
}

func run(pass *analysis.ProgramPass) error {
	c := &checker{
		pass:    pass,
		g:       callgraph.Of(pass.Prog),
		dirs:    make(map[*ast.File]*analysis.Directives),
		sites:   make(map[*callgraph.Node][]site),
		waivers: make(map[token.Pos]waiverUse),
	}
	facts := summary.TaintSpec{
		Graph: c.g,
		Local: func(n *callgraph.Node) (token.Pos, string, bool) {
			for _, s := range c.scan(n) {
				return s.pos, s.what, true
			}
			return token.NoPos, "", false
		},
		SkipEdge:  c.edgeWaived,
		EdgeTaint: edgeTaint,
	}.Solve()

	for _, n := range c.g.Nodes {
		if decl := n.HotDecl(); decl == nil || !analysis.HasFuncDirective(decl, "hotpath") {
			continue
		}
		c.checkRoot(n, facts)
	}
	for _, w := range c.waivers { //gesp:unordered
		if !w.justified {
			c.pass.Reportf(w.at, "//gesp:allocok without justification; "+
				"say why the allocation is acceptable, inline or on the line above")
		}
	}
	return nil
}

// checkRoot reports the root's own new-coverage allocation sites and
// one blame path per call edge that reaches an allocation.
func (c *checker) checkRoot(n *callgraph.Node, facts map[*callgraph.Node]summary.Taint) {
	for _, s := range c.scan(n) {
		if !s.covered {
			c.pass.Reportf(s.pos, "%s inside //gesp:hotpath function %s", s.what, n.Name())
		}
	}
	// Group edges by call site so a dynamic call with many possible
	// allocating targets yields one diagnostic, not a flood.
	reported := make(map[token.Pos]bool)
	for i, e := range n.Out {
		if reported[e.Pos] || c.edgeWaived(e) {
			continue
		}
		var msg string
		if what, bad := edgeTaint(e); bad {
			msg = summary.RenderBlame(c.pass.Prog.Fset, n, []*callgraph.Edge{e},
				summary.Taint{Bad: true, Via: e, What: what})
		} else if f := facts[e.Callee]; f.Bad {
			path, sink := summary.Blame(facts, e.Callee)
			msg = summary.RenderBlame(c.pass.Prog.Fset, n,
				append([]*callgraph.Edge{e}, path...), sink)
		} else {
			continue
		}
		reported[e.Pos] = true
		if extra := c.extraTargets(n.Out[i+1:], e.Pos, facts); extra > 0 {
			msg = fmt.Sprintf("%s (+%d other possible dynamic targets)", msg, extra)
		}
		c.pass.Reportf(e.Pos, "allocation reachable from //gesp:hotpath function %s: %s", n.Name(), msg)
	}
}

// extraTargets counts further allocating callees dispatched from the
// same call site.
func (c *checker) extraTargets(rest []*callgraph.Edge, pos token.Pos, facts map[*callgraph.Node]summary.Taint) int {
	extra := 0
	for _, e := range rest {
		if e.Pos != pos || c.edgeWaived(e) {
			continue
		}
		if _, bad := edgeTaint(e); bad || facts[e.Callee].Bad {
			extra++
		}
	}
	return extra
}

// edgeTaint implements the external-callee policy: a call that leaves
// the program is assumed to allocate unless allowlisted.
func edgeTaint(e *callgraph.Edge) (string, bool) {
	if !e.Callee.External() {
		return "", false
	}
	fn := e.Callee.Func
	if fn.Pkg() == nil || allowedPkgs[fn.Pkg().Path()] || allowedFuncs[fn.FullName()] {
		return "", false
	}
	return fmt.Sprintf("calls %s (outside the program; assumed to allocate)", fn.FullName()), true
}

func (c *checker) fileDirs(f *ast.File) *analysis.Directives {
	d, ok := c.dirs[f]
	if !ok {
		d = analysis.FileDirectives(c.pass.Prog.Fset, f)
		c.dirs[f] = d
	}
	return d
}

// waivedAt honors a //gesp:allocok directive at pos in file f,
// recording whether it carried a justification.
func (c *checker) waivedAt(f *ast.File, pos token.Pos) bool {
	if f == nil {
		return false
	}
	d := c.fileDirs(f)
	dir, ok := d.Find(pos, "allocok")
	if !ok {
		return false
	}
	if _, seen := c.waivers[dir.Pos]; !seen {
		c.waivers[dir.Pos] = waiverUse{dir: dir, at: pos, justified: d.Justified(dir)}
	}
	return true
}

func (c *checker) edgeWaived(e *callgraph.Edge) bool {
	return c.waivedAt(e.Caller.File, e.Pos)
}

// scan collects the node's own allocation sites (memoized).
func (c *checker) scan(n *callgraph.Node) []site {
	if s, ok := c.sites[n]; ok {
		return s
	}
	var out []site
	info := n.Pkg.Info
	add := func(pos token.Pos, what string, covered bool) {
		if c.waivedAt(n.File, pos) {
			return
		}
		out = append(out, site{pos: pos, what: what, covered: covered})
	}
	// Prepass: mark call-function expressions, so a method referenced
	// as a value (which allocates a bound-method closure) is told apart
	// from an ordinary method call.
	callFuns := make(map[ast.Node]bool)
	n.Walk(func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			callFuns[stripParens(call.Fun)] = true
		}
		return true
	})
	n.Walk(func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.CallExpr:
			c.scanCall(info, x, add)
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					add(x.Pos(), fmt.Sprintf("composite literal of type %s", t), true)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					add(x.Pos(), "&composite literal (heap escape)", true)
				}
			}
		case *ast.FuncLit:
			add(x.Pos(), "function literal (closure capture)", true)
		case *ast.GoStmt:
			add(x.Pos(), "goroutine launch", true)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info.TypeOf(x)) {
				add(x.Pos(), "string concatenation", false)
			}
		case *ast.SelectorExpr:
			if callFuns[x] {
				return true
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				add(x.Pos(), fmt.Sprintf("method value %s (allocates a bound closure)", x.Sel.Name), false)
			}
		case *ast.AssignStmt:
			c.scanAssign(info, x, add)
		case *ast.ValueSpec:
			c.scanValueSpec(info, x, add)
		case *ast.ReturnStmt:
			c.scanReturn(info, n, x, add)
		}
		return true
	})
	c.sites[n] = out
	return out
}

// scanCall flags allocating builtins, allocating conversions, variadic
// packing, and arguments boxed into interface parameters.
func (c *checker) scanCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, bool)) {
	fun := stripParens(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				add(call.Pos(), b.Name(), true)
			}
			return // other builtins (incl. panic's crash path): no boxing check
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.scanConversion(info, call, tv.Type, add)
		return
	}
	sig, ok := info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a pre-built slice is passed through
			}
			if i == params.Len()-1 {
				add(arg.Pos(), "variadic call (allocates the argument slice)", false)
			}
			if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // generic instantiation, not boxing
		}
		if types.IsInterface(pt) && boxAllocates(info.TypeOf(arg)) {
			add(arg.Pos(), fmt.Sprintf("%s boxed into interface parameter", info.TypeOf(arg)), false)
		}
	}
}

// scanConversion flags conversions that copy or box.
func (c *checker) scanConversion(info *types.Info, call *ast.CallExpr, dst types.Type, add func(token.Pos, string, bool)) {
	if len(call.Args) != 1 {
		return
	}
	src := info.TypeOf(call.Args[0])
	switch d := dst.Underlying().(type) {
	case *types.Interface:
		if boxAllocates(src) {
			add(call.Pos(), fmt.Sprintf("conversion of %s to %s (interface boxing)", src, dst), false)
		}
	case *types.Slice:
		if isString(src) {
			add(call.Pos(), "string-to-slice conversion (copies)", false)
		}
	case *types.Basic:
		if d.Info()&types.IsString != 0 && src != nil {
			if _, ok := src.Underlying().(*types.Slice); ok {
				add(call.Pos(), "slice-to-string conversion (copies)", false)
			}
		}
	}
}

func (c *checker) scanAssign(info *types.Info, x *ast.AssignStmt, add func(token.Pos, string, bool)) {
	if len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i := range x.Lhs {
		lt := info.TypeOf(x.Lhs[i])
		if lt == nil {
			continue
		}
		if _, isTP := lt.(*types.TypeParam); isTP {
			continue
		}
		if types.IsInterface(lt) && boxAllocates(info.TypeOf(x.Rhs[i])) {
			add(x.Rhs[i].Pos(), fmt.Sprintf("%s boxed into interface assignment", info.TypeOf(x.Rhs[i])), false)
		}
	}
}

func (c *checker) scanValueSpec(info *types.Info, x *ast.ValueSpec, add func(token.Pos, string, bool)) {
	for i, name := range x.Names {
		if i >= len(x.Values) {
			break
		}
		obj := info.Defs[name]
		if obj == nil || !types.IsInterface(obj.Type()) {
			continue
		}
		if boxAllocates(info.TypeOf(x.Values[i])) {
			add(x.Values[i].Pos(), fmt.Sprintf("%s boxed into interface variable", info.TypeOf(x.Values[i])), false)
		}
	}
}

func (c *checker) scanReturn(info *types.Info, n *callgraph.Node, x *ast.ReturnStmt, add func(token.Pos, string, bool)) {
	var sig *types.Signature
	switch {
	case n.Decl != nil:
		if fn, ok := info.Defs[n.Decl.Name].(*types.Func); ok {
			sig = fn.Type().(*types.Signature)
		}
	case n.Lit != nil:
		sig, _ = info.TypeOf(n.Lit).(*types.Signature)
	}
	if sig == nil || len(x.Results) != sig.Results().Len() {
		return
	}
	for i, res := range x.Results {
		rt := sig.Results().At(i).Type()
		if _, isTP := rt.(*types.TypeParam); isTP {
			continue
		}
		if types.IsInterface(rt) && boxAllocates(info.TypeOf(res)) {
			add(res.Pos(), fmt.Sprintf("%s boxed into interface result", info.TypeOf(res)), false)
		}
	}
}

// boxAllocates reports whether storing a value of type t in an
// interface allocates: everything except pointer-shaped values (whose
// representation fits the interface data word) and nil.
func boxAllocates(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}
