package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers
// consume.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go/packages
// machinery: module-local import paths are resolved to directories and
// type-checked from source recursively, everything else is delegated to
// the compiler's source importer (which handles GOROOT). All loads
// share one FileSet and one cache, so each package is type-checked
// exactly once and type identity is preserved across imports.
type Loader struct {
	fset *token.FileSet
	std  types.Importer
	tags map[string]bool
	info *types.Info

	// resolve maps a non-stdlib import path to its directory; ok=false
	// falls through to the stdlib importer.
	resolve func(path string) (string, bool)

	modPath string // module path, "" for fixture loaders
	modDir  string

	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(tags []string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		tags:    make(map[string]bool),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Instances:  make(map[*ast.Ident]types.Instance),
		},
	}
	for _, t := range tags {
		if t != "" {
			l.tags[t] = true
		}
	}
	return l
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod. Build tags (for //go:build evaluation) are optional.
func NewLoader(modDir string, tags []string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: loader: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modDir)
	}
	l := newLoader(tags)
	l.modPath, l.modDir = modPath, modDir
	l.resolve = func(path string) (string, bool) {
		if path == modPath {
			return modDir, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(modDir, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	return l, nil
}

// NewFixtureLoader builds a loader for analysistest fixtures: any
// import path whose directory exists under srcRoot (GOPATH-style
// srcRoot/<path>) resolves there; everything else is stdlib.
func NewFixtureLoader(srcRoot string, tags []string) *Loader {
	l := newLoader(tags)
	l.resolve = func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	return l
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every module-local (or fixture) package loaded so far,
// sorted by import path: the program a ProgramAnalyzer sees. Stdlib
// packages resolved by the compiler importer are not included.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs { //gesp:unordered
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Import implements types.Importer so a Loader can resolve the imports
// of the packages it loads.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.resolve(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the import path, loading
// its module-local dependencies recursively.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve %q to a directory", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: l.info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of a directory that satisfy the
// loader's build tags.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if l.fileIncluded(f) {
			files = append(files, f)
		}
	}
	return files, nil
}

// fileIncluded evaluates the file's //go:build (or legacy +build)
// constraints against the loader's tag set. GOOS/GOARCH file-name
// suffixes are not interpreted; the project has none.
func (l *Loader) fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(l.tagActive) {
				return false
			}
		}
	}
	return true
}

var releaseTagRE = regexp.MustCompile(`^go1\.\d+$`)

func (l *Loader) tagActive(tag string) bool {
	return l.tags[tag] || tag == runtime.GOOS || tag == runtime.GOARCH ||
		tag == runtime.Compiler || releaseTagRE.MatchString(tag)
}

// Expand resolves package patterns to import paths. Supported shapes:
// "./..." and "./dir/..." subtree wildcards, "./dir" relative
// directories, and explicit import paths within the module. Only
// directories containing at least one non-test Go file are returned.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if l.modPath == "" {
		return nil, fmt.Errorf("analysis: Expand requires a module loader")
	}
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "..."):
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			if base == "." || base == "" {
				base = l.modDir
			} else {
				base = filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(base, "./")))
			}
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if !hasGoFiles(p) {
					return nil
				}
				rel, err := filepath.Rel(l.modDir, p)
				if err != nil {
					return err
				}
				if rel == "." {
					add(l.modPath)
				} else {
					add(l.modPath + "/" + filepath.ToSlash(rel))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			rel := strings.TrimPrefix(pat, "./")
			if rel == "." || rel == "" {
				add(l.modPath)
			} else {
				add(l.modPath + "/" + filepath.ToSlash(rel))
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
