// Package analysistest runs an analyzer over GOPATH-style fixture
// packages (testdata/src/<pkg>/*.go) and checks its diagnostics against
// // want "regexp" comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract: every
// diagnostic must be expected by a want on its line, and every want
// must be matched by a diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"gesp/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package from testdata/src, applies the
// analyzer, and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join(testdata, "src"), nil)
	for _, pkg := range pkgs {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		diags, err := analysis.RunAnalyzer(a, p)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		wants, err := collectWants(p)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", pkg, err)
		}
		check(t, p.Fset, diags, wants)
	}
}

// RunProgram loads the fixture packages (plus anything they import from
// testdata/src) into one program, applies the whole-program analyzer
// once, and checks its diagnostics against the want comments of every
// loaded fixture file.
func RunProgram(t *testing.T, testdata string, a *analysis.ProgramAnalyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join(testdata, "src"), nil)
	for _, pkg := range pkgs {
		if _, err := loader.Load(pkg); err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
	}
	prog := analysis.NewProgram(loader.Fset(), loader.Loaded())
	diags, err := analysis.RunProgramAnalyzer(a, prog)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var wants []*want
	for _, p := range prog.Pkgs {
		w, err := collectWants(p)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", p.Path, err)
		}
		wants = append(wants, w...)
	}
	check(t, loader.Fset(), diags, wants)
}

// check claims each diagnostic against the wants and reports both
// unexpected diagnostics and unmatched wants.
func check(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func collectWants(p *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: want comment with no quoted pattern", pos)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
