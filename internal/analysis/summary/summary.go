// Package summary is the generic bottom-up function-summary fixpoint
// engine of the interprocedural analyzers: given the whole-program call
// graph, it computes one fact per function by folding callee facts into
// callers until nothing changes. Recursion is handled by the worklist
// (a cycle converges because flow functions must be monotone).
//
// The canonical instantiation is Taint — "can this function's
// transitive call closure do the forbidden thing, and via which path" —
// used by hotalloc-ip (allocation) and detclock-ip (wall-clock and
// unseeded randomness). Each tainted function records one witness: a
// local site or the call edge to a tainted callee, so a diagnostic can
// carry the full blame path from an annotated root down to the
// offending statement.
package summary

import (
	"fmt"
	"go/token"
	"strings"

	"gesp/internal/analysis/callgraph"
)

// Engine computes one fact of type F per module node, bottom-up.
type Engine[F any] struct {
	Graph *callgraph.Graph
	// Local computes a node's initial fact from its own body alone.
	Local func(n *callgraph.Node) F
	// Flow folds the callee's fact into the caller's current fact at
	// edge e, reporting whether the caller's fact changed. Flow must be
	// monotone: once changed, repeated application must converge.
	Flow func(e *callgraph.Edge, callee, caller F) (F, bool)
}

// Solve runs the fixpoint and returns the final facts. External nodes
// (bodies outside the program) are not iterated; encode policies about
// them in Local or in edge handling.
func (eng *Engine[F]) Solve() map[*callgraph.Node]F {
	facts := make(map[*callgraph.Node]F, len(eng.Graph.Nodes))
	for _, n := range eng.Graph.Nodes {
		facts[n] = eng.Local(n)
	}
	work := make([]*callgraph.Node, len(eng.Graph.Nodes))
	copy(work, eng.Graph.Nodes)
	queued := make(map[*callgraph.Node]bool, len(work))
	for _, n := range work {
		queued[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		for _, e := range n.In {
			c := e.Caller
			nf, changed := eng.Flow(e, facts[n], facts[c])
			if !changed {
				continue
			}
			facts[c] = nf
			if !queued[c] {
				queued[c] = true
				work = append(work, c)
			}
		}
	}
	return facts
}

// Taint is the reachability fact: Bad functions can transitively reach
// a forbidden operation. Exactly one witness form is set when Bad:
//
//   - local cause: Via == nil, Pos and What name the offending site in
//     this function's own body;
//   - edge cause: Via != nil and What != "", the call edge itself is
//     forbidden (a call to an external or annotated function);
//   - propagated: Via != nil and What == "", the cause lives further
//     down the chain at facts[Via.Callee].
type Taint struct {
	Bad  bool
	Pos  token.Pos
	What string
	Via  *callgraph.Edge
}

// TaintSpec configures a reachability analysis.
type TaintSpec struct {
	Graph *callgraph.Graph
	// Local returns the node's own offending site, if any.
	Local func(n *callgraph.Node) (token.Pos, string, bool)
	// Clean forces a node's fact clean regardless of body and callees:
	// sanctioned (annotated) functions.
	Clean func(n *callgraph.Node) bool
	// SkipEdge excludes an edge from propagation: waived call sites.
	SkipEdge func(e *callgraph.Edge) bool
	// EdgeTaint marks an edge forbidden by the callee's declaration
	// alone — a call to an external function assumed dirty, or to an
	// annotated function — independent of the callee's computed fact.
	EdgeTaint func(e *callgraph.Edge) (string, bool)
}

// Solve runs the taint fixpoint.
func (s TaintSpec) Solve() map[*callgraph.Node]Taint {
	skip := func(e *callgraph.Edge) bool { return s.SkipEdge != nil && s.SkipEdge(e) }
	clean := func(n *callgraph.Node) bool { return s.Clean != nil && s.Clean(n) }
	eng := &Engine[Taint]{
		Graph: s.Graph,
		Local: func(n *callgraph.Node) Taint {
			if clean(n) {
				return Taint{}
			}
			if s.Local != nil {
				if pos, what, ok := s.Local(n); ok {
					return Taint{Bad: true, Pos: pos, What: what}
				}
			}
			if s.EdgeTaint != nil {
				for _, e := range n.Out {
					if skip(e) {
						continue
					}
					if what, ok := s.EdgeTaint(e); ok {
						return Taint{Bad: true, Via: e, What: what}
					}
				}
			}
			return Taint{}
		},
		Flow: func(e *callgraph.Edge, callee, caller Taint) (Taint, bool) {
			if caller.Bad || !callee.Bad || clean(e.Caller) || skip(e) {
				return caller, false
			}
			return Taint{Bad: true, Via: e}, true
		},
	}
	return eng.Solve()
}

// Blame walks the witness chain from start down to its cause: the edges
// taken, and the terminal taint (a local cause, or an edge cause whose
// What describes the final hop). start must be Bad.
func Blame(facts map[*callgraph.Node]Taint, start *callgraph.Node) ([]*callgraph.Edge, Taint) {
	var path []*callgraph.Edge
	cur := facts[start]
	seen := map[*callgraph.Node]bool{start: true}
	for cur.Bad && cur.Via != nil {
		path = append(path, cur.Via)
		if cur.What != "" {
			return path, cur
		}
		next := cur.Via.Callee
		if seen[next] {
			break
		}
		seen[next] = true
		cur = facts[next]
	}
	return path, cur
}

// RenderBlame formats a blame path for a diagnostic: each hop as
// "name (call at file:line)" joined by " → ", ending in the terminal
// cause. Positions are rendered relative to the FileSet.
func RenderBlame(fset *token.FileSet, start *callgraph.Node, path []*callgraph.Edge, sink Taint) string {
	var b strings.Builder
	b.WriteString(start.Name())
	for _, e := range path {
		fmt.Fprintf(&b, " → %s (call at %s)", e.Callee.Name(), shortPos(fset, e.Pos))
	}
	if sink.What != "" {
		if sink.Via != nil {
			fmt.Fprintf(&b, ": %s", sink.What)
		} else {
			fmt.Fprintf(&b, ": %s at %s", sink.What, shortPos(fset, sink.Pos))
		}
	}
	return b.String()
}

// shortPos renders file:line with the directory prefix trimmed to the
// last path element, keeping diagnostics readable.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
