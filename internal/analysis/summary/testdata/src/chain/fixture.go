// Package chain is the summary-engine fixture: a three-deep call chain
// to a forbidden function, a recursive cycle (fixpoint convergence),
// and a clean entry point.
package chain

func Entry() { Mid() }

func Mid() {
	Leaf()
	Rec(2)
}

func Leaf() { forbidden() }

func forbidden() {}

// Rec converges under the worklist despite the self-edge.
func Rec(n int) {
	if n > 0 {
		Rec(n - 1)
	}
}

func CleanEntry() { Rec(3) }
