package summary_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gesp/internal/analysis"
	"gesp/internal/analysis/callgraph"
	"gesp/internal/analysis/summary"
)

func fixtureGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join("testdata", "src"), nil)
	if _, err := loader.Load("chain"); err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Of(analysis.NewProgram(loader.Fset(), loader.Loaded()))
}

func forbiddenSpec(g *callgraph.Graph) summary.TaintSpec {
	return summary.TaintSpec{
		Graph: g,
		EdgeTaint: func(e *callgraph.Edge) (string, bool) {
			if e.Callee.Name() == "chain.forbidden" {
				return "calls forbidden()", true
			}
			return "", false
		},
	}
}

func TestTaintPropagationAndBlamePath(t *testing.T) {
	g := fixtureGraph(t)
	facts := forbiddenSpec(g).Solve()

	entry := g.Lookup("chain.Entry")
	if !facts[entry].Bad {
		t.Fatal("chain.Entry should be tainted through Mid and Leaf")
	}
	if clean := g.Lookup("chain.CleanEntry"); facts[clean].Bad {
		t.Error("chain.CleanEntry should be clean")
	}
	if rec := g.Lookup("chain.Rec"); facts[rec].Bad {
		t.Error("chain.Rec (pure recursion) should be clean")
	}

	path, sink := summary.Blame(facts, entry)
	var hops []string
	for _, e := range path {
		hops = append(hops, e.Callee.Name())
	}
	want := []string{"chain.Mid", "chain.Leaf", "chain.forbidden"}
	if strings.Join(hops, ",") != strings.Join(want, ",") {
		t.Errorf("blame path %v, want %v", hops, want)
	}
	if sink.What != "calls forbidden()" {
		t.Errorf("sink cause %q, want %q", sink.What, "calls forbidden()")
	}

	rendered := summary.RenderBlame(g.Prog.Fset, entry, path, sink)
	for _, frag := range []string{"chain.Entry", "chain.Mid (call at fixture.go:", "chain.Leaf (call at fixture.go:", ": calls forbidden()"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("rendered blame %q missing %q", rendered, frag)
		}
	}
}

func TestSkippedEdgeCutsPropagation(t *testing.T) {
	g := fixtureGraph(t)
	spec := forbiddenSpec(g)
	spec.SkipEdge = func(e *callgraph.Edge) bool {
		return e.Caller.Name() == "chain.Leaf" && e.Callee.Name() == "chain.forbidden"
	}
	facts := spec.Solve()
	for _, name := range []string{"chain.Entry", "chain.Mid", "chain.Leaf"} {
		if facts[g.Lookup(name)].Bad {
			t.Errorf("%s tainted despite the waived edge", name)
		}
	}
}

func TestCleanNodeCutsPropagation(t *testing.T) {
	g := fixtureGraph(t)
	spec := forbiddenSpec(g)
	spec.Clean = func(n *callgraph.Node) bool { return n.Name() == "chain.Mid" }
	facts := spec.Solve()
	if !facts[g.Lookup("chain.Leaf")].Bad {
		t.Error("chain.Leaf should stay tainted")
	}
	if facts[g.Lookup("chain.Mid")].Bad {
		t.Error("chain.Mid is sanctioned and should be clean")
	}
	if facts[g.Lookup("chain.Entry")].Bad {
		t.Error("chain.Entry's only path runs through sanctioned Mid")
	}
}
