// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, built so the gesp-lint
// suite can run in environments without the x/tools module. It keeps
// the same core shapes — an Analyzer with a Run(*Pass) entry point that
// reports Diagnostics — so the analyzers port verbatim to the upstream
// framework if x/tools ever becomes available.
//
// The package also defines the project's source annotations, written as
// machine-readable directive comments in the //gesp: namespace:
//
//	//gesp:hotpath    — the function is an allocation-free kernel;
//	                    the hotalloc analyzer enforces it.
//	//gesp:wallclock  — the function intentionally reads the host
//	                    wall clock (real-time measurement, never the
//	                    simulator's virtual clock); silences detclock.
//	//gesp:unordered  — the annotated map iteration is order-
//	                    insensitive; silences mapiter.
//	//gesp:floateq    — the annotated float comparison is intentionally
//	                    exact; silences floatcmp.
//	//gesp:errok      — the annotated call's error is deliberately
//	                    discarded (say why in a comment); silences
//	                    errdrop.
//
// Like //go:build directives, these are written with no space after
// "//" and are therefore excluded from godoc text.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks flags.
	Name string
	// Doc is the one-paragraph description shown by gesp-lint -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// RunAnalyzer applies a to pkg and returns the diagnostics sorted by
// position. Used by both the driver and the analysistest harness.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
