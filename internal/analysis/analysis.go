// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, built so the gesp-lint
// suite can run in environments without the x/tools module. It keeps
// the same core shapes — an Analyzer with a Run(*Pass) entry point that
// reports Diagnostics — so the analyzers port verbatim to the upstream
// framework if x/tools ever becomes available.
//
// The package also defines the project's source annotations, written as
// machine-readable directive comments in the //gesp: namespace:
//
//	//gesp:hotpath    — the function is an allocation-free kernel;
//	                    the hotalloc analyzer enforces it.
//	//gesp:wallclock  — the function intentionally reads the host
//	                    wall clock (real-time measurement, never the
//	                    simulator's virtual clock); silences detclock.
//	//gesp:unordered  — the annotated map iteration is order-
//	                    insensitive; silences mapiter.
//	//gesp:floateq    — the annotated float comparison is intentionally
//	                    exact; silences floatcmp.
//	//gesp:errok      — the annotated call's error is deliberately
//	                    discarded (say why in a comment); silences
//	                    errdrop.
//	//gesp:guardedby:<mu> — the annotated struct field may only be
//	                    accessed with the sibling mutex <mu> held; the
//	                    guardedby analyzer enforces it.
//	//gesp:holds:<mu> — callers of the annotated function must already
//	                    hold <mu> (receiver-relative for methods, e.g.
//	                    holds:c.mu); guardedby assumes it inside the
//	                    body and checks it at static call sites.
//	//gesp:unsync     — the annotated field access is intentionally
//	                    unsynchronized (say why); silences guardedby.
//	//gesp:allocok    — the annotated call may allocate even though it
//	                    is reachable from a //gesp:hotpath function
//	                    (say why); silences hotalloc-ip for that edge.
//
// Waiver directives (errok, wallclock on a call site, unsync, allocok)
// must carry a justification: free text after the directive token, or a
// plain comment on the same line or the line directly above. A bare
// waiver is itself a diagnostic.
//
// Like //go:build directives, these are written with no space after
// "//" and are therefore excluded from godoc text.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks flags.
	Name string
	// Doc is the one-paragraph description shown by gesp-lint -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// RunAnalyzer applies a to pkg and returns the diagnostics sorted by
// position. Used by both the driver and the analysistest harness.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ProgramAnalyzer describes one whole-program static check: unlike an
// Analyzer, which sees one package at a time, it runs once over every
// loaded package and may reason across package boundaries (call graphs,
// transitive reachability, cross-package field access).
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and -checks flags.
	Name string
	// Doc is the one-paragraph description shown by gesp-lint -help.
	Doc string
	// Run applies the analyzer to the whole program.
	Run func(*ProgramPass) error
}

// Program is the whole-program view handed to ProgramAnalyzers: every
// package the driver loaded (for gesp-lint, the full module), sharing
// one FileSet and one types.Info. Derived artifacts that several
// analyzers need — the call graph above all — are built once and shared
// through Cached.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	cache map[any]any
}

// NewProgram assembles a Program from loaded packages.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	return &Program{Fset: fset, Pkgs: pkgs, cache: make(map[any]any)}
}

// Cached returns the artifact stored under key, building and memoizing
// it on first use. The whole-program call graph is built this way so
// the three interprocedural analyzers share one construction.
func (p *Program) Cached(key any, build func() (any, error)) (any, error) {
	if v, ok := p.cache[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	p.cache[key] = v
	return v, nil
}

// ProgramPass carries one program analyzer's view of the program.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Prog     *Program

	// Report delivers a diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunProgramAnalyzer applies a to the program and returns the
// diagnostics sorted by position.
func RunProgramAnalyzer(a *ProgramAnalyzer, prog *Program) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &ProgramPass{
		Analyzer: a,
		Prog:     prog,
		Report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
