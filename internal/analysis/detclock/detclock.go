// Package detclock forbids wall-clock reads and nondeterministic
// randomness in the packages whose results are measured in the
// simulator's virtual clock (internal/mpisim, internal/dist,
// internal/sched, internal/faultsim, and the compute kernels in
// internal/kernels). GESP's scaling tables are reported in simulated
// seconds, which must be deterministic and machine-independent: a
// time.Now or a globally-seeded math/rand call anywhere in those
// engines silently turns a reproducible measurement into a flaky one.
//
// Functions that intentionally measure host wall time (never feeding
// the virtual clock) opt out with a //gesp:wallclock doc directive.
// Explicitly seeded generators (rand.New(rand.NewSource(k))) are
// allowed; only the package-level, randomly-seeded source is flagged.
package detclock

import (
	"go/ast"
	"go/types"
	"strings"

	"gesp/internal/analysis"
)

// Analyzer is the detclock check.
var Analyzer = &analysis.Analyzer{
	Name: "detclock",
	Doc: "forbid wall-clock reads and unseeded math/rand in the deterministic " +
		"simulation packages (mpisim, dist, sched, faultsim, kernels); opt out with //gesp:wallclock",
	Run: run,
}

// scopedPackages are the import-path segments naming the deterministic
// engines. Matching on the final segment keeps the analyzer applicable
// to both the real packages (gesp/internal/mpisim) and test fixtures.
var scopedPackages = map[string]bool{
	"mpisim": true, "dist": true, "sched": true, "faultsim": true, "kernels": true,
}

// wallFuncs are the time-package functions that read or schedule
// against the host clock. Timer constructors (After, AfterFunc, Tick,
// NewTimer, NewTicker) and Sleep are included: a watchdog or
// checkpoint interval built on host timers would make failure
// detection depend on machine speed, where the simulator's wedge
// detection must fire at a deterministic virtual time. Wall-clock
// backstops that only guard against simulator bugs opt out with
// //gesp:wallclock.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

// seededCtors are the math/rand package-level functions that do not
// touch the global generator and are therefore deterministic when given
// a fixed seed.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func applies(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	return scopedPackages[segs[len(segs)-1]]
}

func run(pass *analysis.Pass) error {
	if !applies(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc || fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			exempt := func() bool {
				return dirs.At(sel.Pos(), "wallclock") ||
					analysis.EnclosingFuncHasDirective(f, sel.Pos(), "wallclock")
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallFuncs[obj.Name()] && !exempt() {
					pass.Reportf(sel.Pos(),
						"time.%s depends on the host wall clock inside a deterministic simulation package; "+
							"use the rank's virtual clock, or annotate the function //gesp:wallclock "+
							"if this is an intentional real-time measurement or backstop", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededCtors[obj.Name()] && !exempt() {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the globally-seeded generator, which is nondeterministic; "+
							"use rand.New(rand.NewSource(seed)) so simulated results are reproducible",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
