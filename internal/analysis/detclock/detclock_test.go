package detclock_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/detclock"
)

func TestDetclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detclock.Analyzer, "mpisim", "outofscope")
}
