// Package mpisim is a detclock fixture: its final path segment places
// it inside the analyzer's deterministic-simulation scope.
package mpisim

import (
	"math/rand"
	"time"
)

var sink float64

func virtualStep() {
	t := time.Now() // want `time\.Now depends on the host wall clock`
	sink += float64(t.Unix())
	sink += rand.Float64()             // want `rand\.Float64 uses the globally-seeded generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the globally-seeded generator`
}

func elapsed(t0 time.Time) {
	sink += time.Since(t0).Seconds() // want `time\.Since depends on the host wall clock`
}

// hostWatchdog builds failure detection on host timers: forbidden — a
// watchdog deadline must be expressed in virtual time or it fires at a
// machine-speed-dependent point in the simulation.
func hostWatchdog(d time.Duration, stop chan struct{}) {
	time.Sleep(d) // want `time\.Sleep depends on the host wall clock`
	select {
	case <-time.After(d): // want `time\.After depends on the host wall clock`
	case <-stop:
	}
	tm := time.NewTimer(d) // want `time\.NewTimer depends on the host wall clock`
	tm.Stop()
	tk := time.NewTicker(d) // want `time\.NewTicker depends on the host wall clock`
	tk.Stop()
	time.AfterFunc(d, func() {}) // want `time\.AfterFunc depends on the host wall clock`
}

// wallBackstop arms a real timer that only fires if the deterministic
// watchdog itself is broken: an allowed, annotated escape hatch.
//
//gesp:wallclock
func wallBackstop(d time.Duration) func() {
	t := time.AfterFunc(d, func() { panic("backstop") })
	return func() { t.Stop() }
}

// seededOK uses an explicitly seeded generator: deterministic, allowed.
func seededOK() {
	rng := rand.New(rand.NewSource(42))
	sink += rng.Float64()
	sink += rng.NormFloat64()
}

// wallTimer intentionally measures host time for reporting only.
//
//gesp:wallclock
func wallTimer() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

func lineExemptTimer(stop chan struct{}) {
	//gesp:wallclock
	<-time.After(time.Millisecond)
}

func lineExempt() {
	//gesp:wallclock
	t0 := time.Now()
	_ = t0
}

// durationsOK exercises time-package identifiers that are not clock
// reads and must not be flagged.
func durationsOK(d time.Duration) float64 {
	return d.Seconds() + float64(time.Second)
}
