// Package mpisim is a detclock fixture: its final path segment places
// it inside the analyzer's deterministic-simulation scope.
package mpisim

import (
	"math/rand"
	"time"
)

var sink float64

func virtualStep() {
	t := time.Now() // want `time\.Now reads the host wall clock`
	sink += float64(t.Unix())
	sink += rand.Float64()             // want `rand\.Float64 uses the globally-seeded generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the globally-seeded generator`
}

func elapsed(t0 time.Time) {
	sink += time.Since(t0).Seconds() // want `time\.Since reads the host wall clock`
}

// seededOK uses an explicitly seeded generator: deterministic, allowed.
func seededOK() {
	rng := rand.New(rand.NewSource(42))
	sink += rng.Float64()
	sink += rng.NormFloat64()
}

// wallTimer intentionally measures host time for reporting only.
//
//gesp:wallclock
func wallTimer() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

func lineExempt() {
	//gesp:wallclock
	t0 := time.Now()
	_ = t0
}

// durationsOK exercises time-package identifiers that are not clock
// reads and must not be flagged.
func durationsOK(d time.Duration) float64 {
	return d.Seconds() + float64(time.Second)
}
