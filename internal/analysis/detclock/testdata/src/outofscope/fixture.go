// Package outofscope is a detclock fixture outside the analyzer's
// scoped packages; nothing here may be flagged.
package outofscope

import (
	"math/rand"
	"time"
)

func timings() float64 {
	t0 := time.Now()
	return time.Since(t0).Seconds() + rand.Float64()
}
