// Package mapiter flags range statements over maps. Go randomizes map
// iteration order per run, so a map range whose effects reach output,
// task seeding, message ordering, or floating-point accumulation order
// makes results nondeterministic — precisely what the static-pivot
// pipeline promises not to be. In GESP even "commutative" accumulation
// is order-sensitive: floating-point sums reassociate.
//
// The analyzer cannot prove which iterations are benign, so every map
// range must either iterate over sorted keys (the fix) or carry a
// //gesp:unordered annotation on or above the range statement asserting
// that the loop is genuinely order-insensitive (pure membership tests,
// counting, draining with no ordered effects).
package mapiter

import (
	"go/ast"
	"go/types"

	"gesp/internal/analysis"
)

// Analyzer is the mapiter check.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map, whose order is randomized per run; sort the keys " +
		"or annotate the loop //gesp:unordered if it is order-insensitive",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if dirs.At(rs.Pos(), "unordered") {
				return true
			}
			pass.Reportf(rs.Pos(), "map iteration order is randomized and can leak into "+
				"results or schedules; iterate over sorted keys, or annotate "+
				"//gesp:unordered if the loop is order-insensitive")
			return true
		})
	}
	return nil
}
