// Package ordering is a mapiter fixture.
package ordering

import "sort"

type msgKey struct{ src, tag int }

func emitAll(pending map[msgKey]float64, out func(float64)) {
	for _, v := range pending { // want `map iteration order is randomized`
		out(v)
	}
}

func emitSorted(pending map[int]float64, out func(float64)) {
	keys := make([]int, 0, len(pending))
	//gesp:unordered
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys { // slice range: fine
		out(pending[k])
	}
}

func countOnly(pending map[int]bool) int {
	n := 0
	for range pending { // want `map iteration order is randomized`
		n++
	}
	return n
}

type alias = map[string]int

func aliased(m alias) {
	for k, v := range m { // want `map iteration order is randomized`
		_ = k
		_ = v
	}
}
