package mapiter_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiter.Analyzer, "ordering")
}
