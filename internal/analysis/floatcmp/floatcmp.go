// Package floatcmp flags == and != between floating-point (or complex)
// operands. After a factorization every value carries rounding error,
// so exact equality is almost always a bug that a tolerance comparison
// (see lu.Eps-scaled helpers) should replace.
//
// Three idioms are exempt because they are exact by construction:
//
//   - comparison against the literal constant zero — sparse kernels
//     legitimately test "is this stored entry exactly zero" to skip
//     work and to guard divisions, and IEEE zero tests are exact;
//   - x != x (and x == x), the canonical NaN probe;
//   - comparisons annotated //gesp:floateq on or above the expression,
//     or inside a function whose doc carries //gesp:floateq.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"gesp/internal/analysis"
)

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on floating-point values outside tolerance helpers; " +
		"exact-zero tests, NaN probes, and //gesp:floateq sites are exempt",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x: NaN probe
			}
			if dirs.At(be.Pos(), "floateq") ||
				analysis.EnclosingFuncHasDirective(f, be.Pos(), "floateq") {
				return true
			}
			pass.Reportf(be.OpPos, "exact %s on floating-point values; compare with a "+
				"tolerance helper, or annotate //gesp:floateq if bit-exact comparison is intended",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 &&
			constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}

// sameExpr reports whether two expressions are syntactically identical
// simple operands (identifiers, selectors, or index expressions over
// such), the shapes that appear in NaN self-comparisons.
func sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(a.X, b.X) && sameExpr(a.Index, b.Index)
	case *ast.ParenExpr:
		return sameExpr(a.X, b)
	}
	if p, ok := b.(*ast.ParenExpr); ok {
		return sameExpr(a, p.X)
	}
	return false
}
