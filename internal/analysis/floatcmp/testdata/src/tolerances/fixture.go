// Package tolerances is a floatcmp fixture.
package tolerances

func residualConverged(r, prev float64) bool {
	return r == prev // want `exact == on floating-point values`
}

func changed(a, b []float64, i int) bool {
	return a[i] != b[i] // want `exact != on floating-point values`
}

func complexEq(a, b complex128) bool {
	return a == b // want `exact == on floating-point values`
}

// Exact-zero guards are exempt: IEEE zero tests are well defined and
// sparse kernels rely on them to skip structural zeros.
func skipZero(v float64) bool {
	return v == 0 || v != 0.0
}

func isNaN(x float64) bool {
	return x != x // NaN probe: exempt
}

// sentinelExact compares against a value stored verbatim earlier; the
// annotation asserts bit-exact comparison is intended.
//
//gesp:floateq
func sentinelExact(v, sentinel float64) bool {
	return v == sentinel
}

func lineAnnotated(v, w float64) bool {
	//gesp:floateq
	return v == w
}

func intsFine(a, b int) bool {
	return a == b
}
