package floatcmp_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcmp.Analyzer, "tolerances")
}
