package detclockip_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/detclockip"
)

func TestFixtures(t *testing.T) {
	analysistest.RunProgram(t, analysistest.TestData(), detclockip.Analyzer, "sched")
}
