// Package sched (a scoped name) exercises detclock-ip: transitive
// wall-clock and rand taint entering deterministic code, the sanctioned
// //gesp:wallclock backstop mechanism, and waiver justification.
package sched

import (
	"time"

	"clockutil"
)

// Deterministic stays silent: Pure is clean all the way down.
func Deterministic(x int) int { return clockutil.Pure(x) }

func Leaky() int64 {
	return clockutil.Stamp() // want `nondeterminism reaches deterministic function sched\.Leaky: sched\.Leaky → clockutil\.Stamp \(call at fixture\.go:\d+\) → time\.Now \(call at clockutil\.go:\d+\): calls time\.Now \(host wall clock\)`
}

func UsesJitter() int {
	return clockutil.Jitter() // want `sched\.UsesJitter → clockutil\.Jitter \(call at fixture\.go:\d+\) → math/rand\.Intn \(call at clockutil\.go:\d+\): calls rand\.Intn \(globally-seeded, nondeterministic\)`
}

// UsesSeeded stays silent: explicitly-seeded generators and their
// methods are deterministic.
func UsesSeeded() int {
	return clockutil.Seeded(42).Intn(10)
}

// Direct stays silent *here*: the intraprocedural detclock already
// reports this exact site.
func Direct() time.Time { return time.Now() }

// Backstop intentionally arms a host timer to catch simulator wedges;
// wall time never feeds the virtual clock.
//
//gesp:wallclock
func Backstop() { time.Sleep(time.Millisecond) }

func UsesBackstop() {
	Backstop() // want `sched\.UsesBackstop → sched\.Backstop \(call at fixture\.go:\d+\): calls //gesp:wallclock function sched\.Backstop`
}

// WaivedBackstop stays silent: the call-site waiver carries a reason.
func WaivedBackstop() {
	Backstop() //gesp:wallclock supervised shutdown path, wall time never feeds the virtual clock
}

func BareWaived() {
	//gesp:wallclock
	Backstop() // want `//gesp:wallclock waiver without justification`
}

//gesp:wallclock
func BareAnnotated() { // want `//gesp:wallclock on sched\.BareAnnotated without justification`
	time.Sleep(1)
}
