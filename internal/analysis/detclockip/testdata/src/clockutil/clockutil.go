// Package clockutil is the non-scoped helper package of the
// detclock-ip fixtures: taint must flow through it into scoped callers.
package clockutil

import (
	"math/rand"
	"time"
)

// Stamp reads the host clock; legal here, but poison for any
// deterministic caller.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the globally-seeded generator.
func Jitter() int { return rand.Intn(10) }

// Seeded builds an explicitly-seeded generator: deterministic.
func Seeded(k int64) *rand.Rand { return rand.New(rand.NewSource(k)) }

// Pure is deterministic all the way down.
func Pure(x int) int { return x * 2 }
