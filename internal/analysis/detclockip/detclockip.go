// Package detclockip is the interprocedural extension of detclock: the
// deterministic simulation packages (mpisim, dist, sched, faultsim,
// kernels) must not reach the host wall clock or the globally-seeded
// math/rand generator through *any* call chain, not just directly. The
// intraprocedural detclock flags direct time.Now/rand.Intn sites inside
// scoped packages; this analyzer propagates the taint bottom-up over
// the whole-program call graph and reports the frontier where it enters
// deterministic code:
//
//   - a call from a scoped function to a //gesp:wallclock-annotated
//     function (the sanctioned backstop mechanism) — the caller must
//     either be annotated itself or waive the call site;
//   - a call from a scoped function into non-scoped module code whose
//     transitive closure reads the clock, with the full blame path.
//
// Direct external wall-clock calls inside scoped packages are left to
// detclock, which already reports those exact sites.
//
// Waivers: a function-level //gesp:wallclock directive sanctions the
// function's own body and is legitimized by doc-comment prose; a
// site-level //gesp:wallclock on (or above) a call line waives that one
// edge and needs an inline or adjacent-comment reason. Bare waivers of
// either form are themselves diagnostics.
package detclockip

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gesp/internal/analysis"
	"gesp/internal/analysis/callgraph"
	"gesp/internal/analysis/summary"
)

// Analyzer is the detclock-ip check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "detclock-ip",
	Doc: "forbid deterministic packages (mpisim, dist, sched, faultsim, kernels) from " +
		"transitively reaching wall clocks, unseeded rand, or //gesp:wallclock functions " +
		"except through justified waivers",
	Run: run,
}

// scopedPackages mirrors (and extends) detclock's scope: the final
// import-path segments of the deterministic engines.
var scopedPackages = map[string]bool{
	"mpisim": true, "dist": true, "sched": true, "faultsim": true, "kernels": true,
}

// wallFuncs and seededCtors follow detclock's vocabulary.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func scoped(pkgPath string) bool {
	segs := strings.Split(pkgPath, "/")
	return scopedPackages[segs[len(segs)-1]]
}

type waiverUse struct {
	at        token.Pos
	justified bool
}

type checker struct {
	pass    *analysis.ProgramPass
	g       *callgraph.Graph
	dirs    map[*ast.File]*analysis.Directives
	waivers map[token.Pos]waiverUse
}

func run(pass *analysis.ProgramPass) error {
	c := &checker{
		pass:    pass,
		g:       callgraph.Of(pass.Prog),
		dirs:    make(map[*ast.File]*analysis.Directives),
		waivers: make(map[token.Pos]waiverUse),
	}
	facts := summary.TaintSpec{
		Graph:     c.g,
		Clean:     sanctioned,
		SkipEdge:  c.edgeWaived,
		EdgeTaint: edgeTaint,
	}.Solve()

	for _, n := range c.g.Nodes {
		c.checkBareAnnotation(n)
		if !scoped(n.Pkg.Path) || sanctioned(n) {
			continue
		}
		c.checkFrontier(n, facts)
	}
	for _, w := range c.waivers { //gesp:unordered
		if !w.justified {
			c.pass.Reportf(w.at, "//gesp:wallclock waiver without justification; "+
				"say why host time is acceptable here, inline or on the line above")
		}
	}
	return nil
}

// checkFrontier reports the edges through which wall-clock taint enters
// the scoped function: calls to sanctioned functions and blame paths
// through non-scoped module code. Direct external wall calls and deeper
// scoped culprits are reported elsewhere (detclock, or their own
// frontier), so one root cause yields one diagnostic.
func (c *checker) checkFrontier(n *callgraph.Node, facts map[*callgraph.Node]summary.Taint) {
	reported := make(map[token.Pos]bool)
	for _, e := range n.Out {
		if reported[e.Pos] || c.edgeWaived(e) {
			continue
		}
		var msg string
		switch what, bad := edgeTaint(e); {
		case bad && e.Callee.External():
			continue // detclock reports the direct site
		case bad:
			msg = summary.RenderBlame(c.pass.Prog.Fset, n, []*callgraph.Edge{e},
				summary.Taint{Bad: true, Via: e, What: what})
		case facts[e.Callee].Bad && !(scoped(e.Callee.Pkg.Path) && !sanctioned(e.Callee)):
			path, sink := summary.Blame(facts, e.Callee)
			msg = summary.RenderBlame(c.pass.Prog.Fset, n,
				append([]*callgraph.Edge{e}, path...), sink)
		default:
			continue
		}
		reported[e.Pos] = true
		c.pass.Reportf(e.Pos, "nondeterminism reaches deterministic function %s: %s; "+
			"use the rank's virtual clock or a seeded generator, or waive the call with "+
			"//gesp:wallclock + reason", n.Name(), msg)
	}
}

// checkBareAnnotation flags //gesp:wallclock function annotations with
// no doc-comment prose: a sanction must say what it sanctions.
func (c *checker) checkBareAnnotation(n *callgraph.Node) {
	if n.Decl == nil || !analysis.HasFuncDirective(n.Decl, "wallclock") {
		return
	}
	if !analysis.FuncDirectiveJustified(n.Decl, "wallclock") {
		c.pass.Reportf(n.Decl.Pos(), "//gesp:wallclock on %s without justification; "+
			"document why this function intentionally reads host time", n.Name())
	}
}

// sanctioned reports whether the node's body is covered by a
// function-level //gesp:wallclock (literals inherit from the enclosing
// declaration).
func sanctioned(n *callgraph.Node) bool {
	d := n.HotDecl()
	return d != nil && analysis.HasFuncDirective(d, "wallclock")
}

// edgeTaint marks calls that introduce nondeterminism by declaration:
// external wall-clock and globally-seeded rand functions, and
// sanctioned (//gesp:wallclock) module functions.
func edgeTaint(e *callgraph.Edge) (string, bool) {
	if e.Callee.External() {
		fn := e.Callee.Func
		if fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return "", false // methods (e.g. on a seeded *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallFuncs[fn.Name()] {
				return "calls time." + fn.Name() + " (host wall clock)", true
			}
		case "math/rand", "math/rand/v2":
			if !seededCtors[fn.Name()] {
				return "calls rand." + fn.Name() + " (globally-seeded, nondeterministic)", true
			}
		}
		return "", false
	}
	if sanctioned(e.Callee) && e.Kind == callgraph.Static {
		// Static only: the deliberate "call the backstop" pattern is a
		// direct call by name. A dynamic or interface edge landing on a
		// sanctioned closure is CHA pool overapproximation (any
		// address-taken function with a matching signature joins the
		// dispatch pool), not a real wall-clock dependency.
		return "calls //gesp:wallclock function " + e.Callee.Name(), true
	}
	return "", false
}

func (c *checker) edgeWaived(e *callgraph.Edge) bool {
	f := e.Caller.File
	if f == nil {
		return false
	}
	d, ok := c.dirs[f]
	if !ok {
		d = analysis.FileDirectives(c.pass.Prog.Fset, f)
		c.dirs[f] = d
	}
	dir, ok := d.Find(e.Pos, "wallclock")
	if !ok {
		return false
	}
	if _, seen := c.waivers[dir.Pos]; !seen {
		c.waivers[dir.Pos] = waiverUse{at: e.Pos, justified: d.Justified(dir)}
	}
	return true
}
