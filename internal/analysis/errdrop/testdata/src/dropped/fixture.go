// Package dropped is an errdrop fixture.
package dropped

import (
	"bytes"
	"fmt"
	"strings"
)

func fallible() error                  { return nil }
func falliblePair() (int, error)       { return 0, nil }
func infallibleFn() int                { return 0 }
func sink(w fmt.Stringer) (int, error) { return 0, nil }

type closer struct{}

func (closer) Close() error { return nil }

func bareStatement() {
	fallible()     // want `result of fallible includes an error that is discarded`
	falliblePair() // want `result of falliblePair includes an error that is discarded`
	infallibleFn() // no error in the tuple: fine
}

func deferredAndGone(c closer) {
	defer fallible() // want `result of fallible includes an error that is discarded`
	go c.Close()     // want `result of c.Close includes an error that is discarded`
}

func blankAssigned() {
	_ = fallible()         // want `error result of fallible assigned to _`
	n, _ := falliblePair() // want `error result of falliblePair assigned to _`
	_ = n
	x, err := falliblePair() // receiving the error is the point
	_, _ = x, err
}

func waived() {
	//gesp:errok probe call; the caller re-checks the result later
	_ = fallible()
	fallible() //gesp:errok best-effort cleanup on the exit path
}

// wholeFuncWaived documents why every drop inside is safe: all calls
// here are best-effort logging.
//
//gesp:errok
func wholeFuncWaived() {
	fallible()
	_ = fallible()
}

func bareWaived() {
	//gesp:errok
	_ = fallible() // want `//gesp:errok without justification`
}

//gesp:errok
func bareFuncWaived() { // want `//gesp:errok without justification`
	fallible()
}

func memWriters() {
	var b strings.Builder
	var buf bytes.Buffer
	b.WriteString("x")            // infallible by contract
	buf.WriteByte('y')            // infallible by contract
	fmt.Fprintf(&b, "z %d", 1)    // in-memory sink: exempt
	fmt.Fprintln(&buf, "w")       // in-memory sink: exempt
	fmt.Println(b.String())       // terminal print: exempt
	fmt.Fprintf(stderrLike{}, "") // want `result of fmt.Fprintf includes an error that is discarded`
}

type stderrLike struct{}

func (stderrLike) Write(p []byte) (int, error) { return len(p), nil }
