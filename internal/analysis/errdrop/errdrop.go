// Package errdrop flags call sites that silently discard an error
// result. In a solver whose whole point is *reporting* numerical
// trouble instead of crashing on it (static pivoting's contract), a
// dropped error is how a singular factorization or an overloaded queue
// turns into silent garbage: every error must be handled, returned, or
// visibly waived.
//
// Two shapes are flagged:
//
//   - a call used as a bare statement (including go/defer) whose result
//     tuple contains an error that nobody receives;
//   - an assignment that lands an error result in the blank identifier
//     (x, _ := f() or _ = f()).
//
// Exemptions, because their error results are unconditionally nil by
// documented contract or write to a human, not a caller:
//
//   - fmt.Print, fmt.Printf, fmt.Println and fmt.Fprint* aimed at
//     os.Stdout or os.Stderr (terminal output);
//   - fmt.Fprint* into a *strings.Builder or *bytes.Buffer, and the
//     Write*/WriteString methods of those types — both never fail;
//   - sites annotated //gesp:errok on (or directly above) the call, or
//     inside a function whose doc comment carries //gesp:errok.
//
// A waiver must carry a reason — inline after the directive token, or
// in an adjacent plain comment (doc-comment prose for the function
// form). A bare //gesp:errok still silences the drop but is itself
// reported.
package errdrop

import (
	"go/ast"
	"go/token"
	"go/types"

	"gesp/internal/analysis"
)

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error returns (bare-statement calls and blank assignments); " +
		"infallible fmt/Builder writes and //gesp:errok sites are exempt",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		dirs := analysis.FileDirectives(pass.Fset, f)
		// A waiver must say why. Bare //gesp:errok still silences the
		// drop (so one site yields one diagnostic), but the waiver
		// itself is reported — deduped per directive, and only when it
		// is actually used to discard an error.
		bare := make(map[token.Pos]token.Pos)
		exempt := func(pos ast.Node) bool {
			if dir, ok := dirs.Find(pos.Pos(), "errok"); ok {
				if !dirs.Justified(dir) {
					if _, seen := bare[dir.Pos]; !seen {
						bare[dir.Pos] = pos.Pos()
					}
				}
				return true
			}
			if fd, ok := analysis.EnclosingFuncDirective(f, pos.Pos(), "errok"); ok {
				if !analysis.FuncDirectiveJustified(fd, "errok") {
					if _, seen := bare[fd.Pos()]; !seen {
						bare[fd.Pos()] = fd.Pos()
					}
				}
				return true
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkBare(pass, call, exempt)
				}
			case *ast.DeferStmt:
				checkBare(pass, st.Call, exempt)
			case *ast.GoStmt:
				checkBare(pass, st.Call, exempt)
			case *ast.AssignStmt:
				checkBlank(pass, st, exempt)
			}
			return true
		})
		for _, at := range bare { //gesp:unordered
			pass.Reportf(at, "//gesp:errok without justification; "+
				"say why the dropped error is safe, inline or on the line above")
		}
	}
	return nil
}

// checkBare flags a call used as a statement when its results include
// an error nobody receives.
func checkBare(pass *analysis.Pass, call *ast.CallExpr, exempt func(ast.Node) bool) {
	if !returnsError(pass, call) || infallible(pass, call) || exempt(call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; "+
		"handle it, return it, or annotate //gesp:errok", callName(call))
}

// checkBlank flags error results assigned to the blank identifier.
func checkBlank(pass *analysis.Pass, st *ast.AssignStmt, exempt func(ast.Node) bool) {
	// x, _ := f(): one call, its tuple split across the left-hand sides.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || infallible(pass, call) {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(st.Lhs) {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) && !exempt(st) {
				pass.Reportf(lhs.Pos(), "error result of %s assigned to _; "+
					"handle it, return it, or annotate //gesp:errok", callName(call))
				return
			}
		}
		return
	}
	// _ = f() pairwise.
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) || !isBlank(lhs) {
			continue
		}
		if call, ok := st.Rhs[i].(*ast.CallExpr); ok &&
			isErrorType(pass.TypeOf(call)) && !infallible(pass, call) && !exempt(st) {
			pass.Reportf(lhs.Pos(), "error result of %s assigned to _; "+
				"handle it, return it, or annotate //gesp:errok", callName(call))
		}
	}
}

// returnsError reports whether the call's result type is, or contains,
// an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// infallible recognizes the calls whose error result is nil by
// documented contract: terminal prints, and writes into the two
// standard in-memory buffers.
func infallible(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print*/Fprint* on an in-memory sink.
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
		if obj, ok := pass.TypesInfo.Uses[pkg]; ok {
			if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				switch sel.Sel.Name {
				case "Print", "Printf", "Println":
					return true
				case "Fprint", "Fprintf", "Fprintln":
					return len(call.Args) > 0 &&
						(isMemWriter(pass.TypeOf(call.Args[0])) || isStdStream(pass, call.Args[0]))
				}
			}
		}
	}
	// Builder/Buffer method calls: (&b).WriteString(...) etc.
	return isMemWriter(pass.TypeOf(sel.X))
}

// isMemWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer, whose Write methods never return a non-nil error.
func isMemWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e names os.Stdout or os.Stderr.
func isStdStream(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[pkg]
	if !ok {
		return false
	}
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}

// callName renders the called expression for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
