package errdrop_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "dropped")
}
