// Package hotalloc enforces the //gesp:hotpath contract: functions so
// annotated are the supernodal inner kernels (RankBUpdateInto, the
// dense panel solves, the triangular-solve loops) that run millions of
// times per factorization and must not touch the allocator. The
// analyzer flags every construct that may allocate inside an annotated
// function: append, make, new, slice/map composite literals, taking the
// address of a composite literal, and function literals (closures).
//
// The contract is intentionally conservative — an append into
// preallocated capacity is still flagged, because capacity is a dynamic
// property the kernel cannot promise statically. Scratch-buffer growth
// belongs in an un-annotated ensure/setup function called outside the
// inner loop (see dist.UpdateScratch).
package hotalloc

import (
	"go/ast"
	"go/types"

	"gesp/internal/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocations (append/make/new/literals/closures) inside //gesp:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasFuncDirective(fd, "hotpath") {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append", "make", "new":
						pass.Reportf(n.Pos(), "%s allocates inside //gesp:hotpath function %s; "+
							"hoist the buffer into a scratch struct sized outside the kernel", b.Name(), name)
					}
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "composite literal of type %s allocates inside "+
					"//gesp:hotpath function %s", t, name)
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&composite literal escapes to the heap inside "+
					"//gesp:hotpath function %s", name)
				return false // don't double-report the literal itself
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates a closure inside "+
				"//gesp:hotpath function %s", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch inside //gesp:hotpath function %s", name)
		}
		return true
	})
}
