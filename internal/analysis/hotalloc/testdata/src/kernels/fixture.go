// Package kernels is a hotalloc fixture.
package kernels

// scratch mimics a preallocated work buffer.
type scratch struct {
	buf []float64
	ids map[int]int
}

// axpyHot is an annotated kernel with every allocating construct.
//
//gesp:hotpath
func axpyHot(s *scratch, x []float64) float64 {
	tmp := make([]float64, len(x)) // want `make allocates inside //gesp:hotpath function axpyHot`
	tmp = append(tmp, 1)           // want `append allocates inside //gesp:hotpath function axpyHot`
	p := new(float64)              // want `new allocates inside //gesp:hotpath function axpyHot`
	lit := []int{1, 2}             // want `composite literal of type \[\]int allocates`
	m := map[int]int{}             // want `composite literal of type map\[int\]int allocates`
	sp := &scratch{}               // want `&composite literal escapes to the heap`
	f := func() {}                 // want `function literal allocates a closure`
	go f()                         // want `goroutine launch inside //gesp:hotpath function axpyHot`
	_, _, _, _, _ = tmp, p, lit, m, sp
	return x[0]
}

// axpyClean is annotated and allocation-free: no findings.
//
//gesp:hotpath
func axpyClean(s *scratch, x []float64, a float64) {
	for i := range x {
		s.buf[i] += a * x[i]
	}
}

// coldSetup is NOT annotated; identical constructs are fine here.
func coldSetup(n int) *scratch {
	return &scratch{buf: make([]float64, n), ids: map[int]int{}}
}
