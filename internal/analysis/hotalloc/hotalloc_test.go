package hotalloc_test

import (
	"testing"

	"gesp/internal/analysis/analysistest"
	"gesp/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "kernels")
}
