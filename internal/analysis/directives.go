package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix is the comment namespace of the project's source
// annotations (see the package documentation for the vocabulary).
const directivePrefix = "//gesp:"

// HasFuncDirective reports whether the function declaration carries
// //gesp:<name> in its doc comment. Directive comments are attached to
// the doc CommentGroup by the parser but stripped from its Text(), so
// the raw comment list is scanned.
func HasFuncDirective(decl *ast.FuncDecl, name string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == directivePrefix+name {
			return true
		}
	}
	return false
}

// Directives indexes every //gesp: comment of a file by line number, so
// analyzers can honor annotations placed on (or immediately above) the
// statement they apply to.
type Directives struct {
	fset  *token.FileSet
	lines map[int][]string // line -> directive names
}

// FileDirectives scans all comments of a file.
func FileDirectives(fset *token.FileSet, f *ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			name := strings.TrimPrefix(text, directivePrefix)
			line := fset.Position(c.Pos()).Line
			d.lines[line] = append(d.lines[line], name)
		}
	}
	return d
}

// At reports whether directive name is written on the same line as pos
// or on the line directly above it.
func (d *Directives) At(pos token.Pos, name string) bool {
	line := d.fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, n := range d.lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// EnclosingFuncHasDirective reports whether the innermost enclosing
// top-level function declaration of pos in file f carries the
// directive. Positions inside function literals inherit the annotation
// of the declaration that lexically contains them.
func EnclosingFuncHasDirective(f *ast.File, pos token.Pos, name string) bool {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		return HasFuncDirective(fd, name)
	}
	return false
}
