package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"unicode"
)

// directivePrefix is the comment namespace of the project's source
// annotations (see the package documentation for the vocabulary).
const directivePrefix = "//gesp:"

// Directive is one parsed //gesp: comment. The comment's first
// whitespace-delimited token after the prefix is the directive itself;
// a token may carry a colon-separated argument (guardedby:mu,
// holds:c.mu). Any text after the token is the directive's inline
// justification — waiver directives are required to say *why* (either
// inline or in an adjacent plain comment; see Justified).
type Directive struct {
	Name string // name before the first ':' ("errok", "guardedby", ...)
	Arg  string // argument after the first ':' ("mu" in guardedby:mu)
	// Inline is the free text following the token on the same comment
	// line: the directive's inline justification.
	Inline string
	Pos    token.Pos
	Line   int
}

// ParseDirective parses one comment's text as a //gesp: directive.
func ParseDirective(text string, pos token.Pos, line int) (Directive, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), directivePrefix)
	if !ok {
		return Directive{}, false
	}
	cut := strings.IndexFunc(rest, unicode.IsSpace)
	tok, inline := rest, ""
	if cut >= 0 {
		tok, inline = rest[:cut], rest[cut:]
	}
	// Text after an embedded "//" is a separate trailing annotation
	// (e.g. an analysistest want expectation), not justification.
	if i := strings.Index(inline, "//"); i >= 0 {
		inline = inline[:i]
	}
	name, arg, _ := strings.Cut(tok, ":")
	if name == "" {
		return Directive{}, false
	}
	return Directive{
		Name:   name,
		Arg:    arg,
		Inline: strings.TrimSpace(inline),
		Pos:    pos,
		Line:   line,
	}, true
}

// HasFuncDirective reports whether the function declaration carries
// //gesp:<name> in its doc comment. Directive comments are attached to
// the doc CommentGroup by the parser but stripped from its Text(), so
// the raw comment list is scanned.
func HasFuncDirective(decl *ast.FuncDecl, name string) bool {
	_, ok := FuncDirective(decl, name)
	return ok
}

// FuncDirective returns the //gesp:<name> directive of the function's
// doc comment, if present.
func FuncDirective(decl *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range FuncDirectives(decl) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// FuncDirectives returns every //gesp: directive of the function's doc
// comment.
func FuncDirectives(decl *ast.FuncDecl) []Directive {
	if decl == nil || decl.Doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range decl.Doc.List {
		if d, ok := ParseDirective(c.Text, c.Pos(), 0); ok {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirectiveJustified reports whether a doc-comment directive is
// accompanied by prose: either inline text after the directive token or
// any non-directive, non-empty line elsewhere in the doc group. A bare
// directive with no surrounding documentation is an unjustified waiver.
func FuncDirectiveJustified(decl *ast.FuncDecl, name string) bool {
	d, ok := FuncDirective(decl, name)
	if !ok {
		return false
	}
	if d.Inline != "" {
		return true
	}
	for _, c := range decl.Doc.List {
		if _, isDir := ParseDirective(c.Text, c.Pos(), 0); isDir {
			continue
		}
		if commentProse(c.Text) != "" {
			return true
		}
	}
	return false
}

// wantCommentRE matches analysistest expectation comments
// (`// want "..."`), which must not count as directive justification —
// otherwise fixtures could never exercise a bare waiver.
var wantCommentRE = regexp.MustCompile("^want\\s+[`\"]")

// commentProse strips the comment markers and returns the trimmed text,
// or "" for text that is not justification prose.
func commentProse(text string) string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	if wantCommentRE.MatchString(text) {
		return ""
	}
	return text
}

// Directives indexes every //gesp: comment of a file by line number, so
// analyzers can honor annotations placed on (or immediately above) the
// statement they apply to — and check that waivers carry a reason.
type Directives struct {
	fset  *token.FileSet
	lines map[int][]Directive
	// prose marks lines bearing a non-directive comment with text: the
	// adjacent-comment form of directive justification.
	prose map[int]bool
}

// FileDirectives scans all comments of a file.
func FileDirectives(fset *token.FileSet, f *ast.File) *Directives {
	d := &Directives{fset: fset, lines: make(map[int][]Directive), prose: make(map[int]bool)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			if dir, ok := ParseDirective(c.Text, c.Pos(), line); ok {
				d.lines[line] = append(d.lines[line], dir)
				continue
			}
			if commentProse(c.Text) != "" {
				d.prose[line] = true
			}
		}
	}
	return d
}

// At reports whether directive name is written on the same line as pos
// or on the line directly above it.
func (d *Directives) At(pos token.Pos, name string) bool {
	_, ok := d.Find(pos, name)
	return ok
}

// Find returns the directive with the given name on the same line as
// pos or the line directly above it.
func (d *Directives) Find(pos token.Pos, name string) (Directive, bool) {
	line := d.fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, dir := range d.lines[l] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// OnLine returns every directive written on the given line.
func (d *Directives) OnLine(line int) []Directive {
	return d.lines[line]
}

// Justified reports whether the directive carries a reason: inline text
// after its token, or a plain (non-directive) comment on its own line
// or the line directly above.
func (d *Directives) Justified(dir Directive) bool {
	return dir.Inline != "" || d.prose[dir.Line] || d.prose[dir.Line-1]
}

// EnclosingFuncHasDirective reports whether the innermost enclosing
// top-level function declaration of pos in file f carries the
// directive. Positions inside function literals inherit the annotation
// of the declaration that lexically contains them.
func EnclosingFuncHasDirective(f *ast.File, pos token.Pos, name string) bool {
	_, ok := EnclosingFuncDirective(f, pos, name)
	return ok
}

// EnclosingFuncDirective returns the directive carried by the top-level
// function declaration lexically containing pos, along with that
// declaration.
func EnclosingFuncDirective(f *ast.File, pos token.Pos, name string) (*ast.FuncDecl, bool) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		if HasFuncDirective(fd, name) {
			return fd, true
		}
		return nil, false
	}
	return nil, false
}
