package fleetrpc

import "time"

// Backoff is the retry policy for one logical request: up to Attempts
// tries, exponential waits from Base to Max, each wait widened by up to
// Jitter of itself so synchronized clients desynchronize. A shard's
// Retry-After overrides the computed wait when longer — the shard
// knows its own refill schedule better than the client's exponent
// does.
type Backoff struct {
	Attempts   int           // total tries, including the first; <=0 takes 4
	Base       time.Duration // first retry's wait; <=0 takes 25ms
	Max        time.Duration // wait ceiling; <=0 takes 400ms
	Multiplier float64       // growth per retry; <=1 takes 2
	Jitter     float64       // extra wait fraction in [0,1); 0 takes 0.5, <0 disables
}

func (b Backoff) fill() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 400 * time.Millisecond
	}
	if b.Multiplier <= 1 {
		b.Multiplier = 2
	}
	switch {
	case b.Jitter == 0:
		b.Jitter = 0.5
	case b.Jitter < 0:
		b.Jitter = 0
	}
	return b
}

// wait computes the pause before retry number attempt (attempt 0 is
// the wait after the first failure). u is a uniform [0,1) draw from
// the caller's seeded generator; retryAfter is the shard's hint (0 for
// none). Must be called on a filled Backoff.
func (b Backoff) wait(attempt int, u float64, retryAfter time.Duration) time.Duration {
	return b.Wait(attempt, u, retryAfter)
}

// Wait is wait for sibling packages (the HA coordinator client reuses
// this ladder for coordinator failover): defaults are filled, so any
// Backoff value is safe to call.
func (b Backoff) Wait(attempt int, u float64, retryAfter time.Duration) time.Duration {
	b = b.fill()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	w := time.Duration(d * (1 + b.Jitter*u))
	if retryAfter > w {
		w = retryAfter
	}
	return w
}
