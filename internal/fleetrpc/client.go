package fleetrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// ErrUnreachable is the transport-failure class: connection refused,
// reset, or dead mid-body. errors.Is against it matches any wrapped
// transport error. It is always retryable and, unlike an HTTP error,
// also feeds the membership failure counter — a shard that answers
// 503s is alive and shedding; one that doesn't answer at all may be
// gone.
var ErrUnreachable = errors.New("fleetrpc: shard unreachable")

// RemoteError is a non-200 shard response, decoded.
type RemoteError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration // from the Retry-After header; 0 when absent
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("fleetrpc: shard returned %d: %s", e.Status, e.Msg)
}

// Retryable classifies an error from a Client call: true for transport
// failures, deadline expiry, and the HTTP statuses that mean "not now"
// rather than "never" (429, 502, 503, 504). Solves are idempotent —
// the same handle and right-hand side produce the same answer — so a
// retryable solve can always be re-sent, to the same shard or another.
func Retryable(err error) bool {
	if errors.Is(err, ErrUnreachable) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		switch re.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}

// Expired reports the 410 Gone response: the handle's factors were
// evicted (or the shard restarted) and the cure is re-submitting the
// matrix, not retrying the solve.
func Expired(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Status == http.StatusGone
}

// RetryAfterHint extracts the shard's Retry-After suggestion, or 0.
func RetryAfterHint(err error) time.Duration {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.RetryAfter
	}
	return 0
}

// Client speaks the shard wire format to one address. Safe for
// concurrent use; the zero HTTP client field takes http.DefaultClient's
// transport with no client-level timeout (deadlines come from the
// caller's context, which the retry layer owns).
type Client struct {
	Addr string // host:port
	HTTP *http.Client
}

// NewClient builds a client for one shard address with its own
// connection pool (a clone of the default transport, not a share of
// it), so CloseIdle can drop exactly this member's sockets when it
// dies without touching the pools of its healthy peers.
func NewClient(addr string) *Client {
	cli := &http.Client{}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		cli.Transport = t.Clone()
	}
	return &Client{Addr: addr, HTTP: cli}
}

// CloseIdle closes the client's pooled keep-alive connections. The
// coordinator calls it when the member transitions to dead or is
// drained: a long-running coordinator must not hold sockets to killed
// shard processes for its own lifetime. In-flight requests are
// untouched, and a revived member just redials.
func (c *Client) CloseIdle() {
	if c.HTTP == nil || c.HTTP.Transport == nil {
		http.DefaultClient.CloseIdleConnections()
		return
	}
	type idleCloser interface{ CloseIdleConnections() }
	if t, ok := c.HTTP.Transport.(idleCloser); ok {
		t.CloseIdleConnections()
	}
}

// do posts (or gets, when in is nil and method is GET) one request and
// decodes the response into out. Non-200 responses come back as
// *RemoteError; transport failures wrap ErrUnreachable.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleetrpc: marshal %s body: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+c.Addr+path, body)
	if err != nil {
		return fmt.Errorf("fleetrpc: build %s request: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		// The context's own error (deadline, cancel) must surface as
		// itself so the retry layer can tell "shard gone" from "budget
		// spent".
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("%w: %s: %v", ErrUnreachable, c.Addr, err)
	}
	//gesp:errok — close of a fully-read (or error) response body; nothing to recover
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		re := &RemoteError{Status: resp.StatusCode}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				re.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		var eres ErrorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&eres); derr == nil {
			re.Msg = eres.Error
		} else {
			re.Msg = resp.Status
		}
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: bad response body: %v", ErrUnreachable, c.Addr, err)
	}
	return nil
}

// Submit sends a matrix and returns its handle.
func (c *Client) Submit(ctx context.Context, a *sparse.CSC) (serve.Handle, error) {
	return c.SubmitWire(ctx, WireMatrix(a))
}

// SubmitWire is Submit for a pre-encoded matrix — the coordinator
// encodes each registered matrix once and re-sends the same bytes on
// every re-replication.
func (c *Client) SubmitWire(ctx context.Context, req MatrixRequest) (serve.Handle, error) {
	var res MatrixResponse
	if err := c.do(ctx, http.MethodPost, "/v1/matrix", req, &res); err != nil {
		return serve.Handle{}, err
	}
	return serve.ParseHandle(res.Handle)
}

// Solve sends one right-hand side against a handle.
func (c *Client) Solve(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	var res SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", SolveRequest{Handle: h.String(), B: b}, &res); err != nil {
		return nil, err
	}
	if len(res.X) != h.N {
		return nil, fmt.Errorf("%w: %s: solution length %d, want %d", ErrUnreachable, c.Addr, len(res.X), h.N)
	}
	return res.X, nil
}

// Health probes the shard.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var res HealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/health", nil, &res)
	return res, err
}

// Handoff drains the shard and returns the handles it held.
func (c *Client) Handoff(ctx context.Context) (HandoffResponse, error) {
	var res HandoffResponse
	err := c.do(ctx, http.MethodPost, "/v1/handoff", nil, &res)
	return res, err
}

// Stats fetches the shard's serve-layer counters.
func (c *Client) Stats(ctx context.Context) (serve.Stats, error) {
	var res serve.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &res)
	return res, err
}

// SolveDegraded asks the shard for an iterative solve from the raw
// matrix — no handle, no factors, no cache.
func (c *Client) SolveDegraded(ctx context.Context, m MatrixRequest, b []float64) (DegradedResponse, error) {
	var res DegradedResponse
	err := c.do(ctx, http.MethodPost, "/v1/degraded", DegradedRequest{Matrix: m, B: b}, &res)
	return res, err
}
