package fleetrpc

// Shard-process side of the chaos harness: the child run function that
// faultsim's generic re-exec machinery is deliberately ignorant of.
// RunShardIfChild turns any binary whose main (or TestMain) calls it
// into a spawnable shard process, and SpawnShards launches a fleet of
// them from the same binary. fleetrpc imports faultsim — never the
// reverse — so every engine's test suite can keep importing faultsim's
// deterministic injectors without a cycle through the serve stack.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"

	"gesp/internal/faultsim"
	"gesp/internal/serve"
)

// ShardConf is what the parent passes each child shard through the
// environment. Zero values take the serve defaults.
type ShardConf struct {
	// MaxFactors caps the shard's factor cache (small values force the
	// eviction/heal path under chaos).
	MaxFactors int `json:"max_factors,omitempty"`
	// MaxBatch/QueueCap tune the shard's batcher.
	MaxBatch int `json:"max_batch,omitempty"`
	QueueCap int `json:"queue_cap,omitempty"`
}

// RunShardIfChild is the re-exec hook: call it first thing in TestMain
// (or a command's main). In the parent it returns immediately; in a
// child spawned by SpawnShards it serves a shard until killed and
// never returns.
func RunShardIfChild() {
	raw, ok := faultsim.ChildPayload()
	if !ok {
		return
	}
	if err := runShard(raw); err != nil {
		fmt.Fprintf(os.Stderr, "chaos shard: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runShard(raw string) error {
	var conf ShardConf
	if err := json.Unmarshal([]byte(raw), &conf); err != nil {
		return fmt.Errorf("bad shard conf: %w", err)
	}
	cfg := serve.DefaultConfig()
	if conf.MaxFactors > 0 {
		cfg.MaxFactors = conf.MaxFactors
	}
	if conf.MaxBatch > 0 {
		cfg.MaxBatch = conf.MaxBatch
	}
	if conf.QueueCap > 0 {
		cfg.QueueCap = conf.QueueCap
	}
	srv := NewServer(serve.New(cfg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The ready line is the parent's only synchronization point; it
	// must go out after the listener is accepting.
	faultsim.AnnounceReady(ln.Addr().String())
	return http.Serve(ln, srv.Mux())
}

// SpawnShards re-executes the current binary n times as shard
// processes (each must reach RunShardIfChild) and waits for each to
// report its listen address.
func SpawnShards(n int, conf ShardConf) (*faultsim.ProcSet, error) {
	payload, err := json.Marshal(conf)
	if err != nil {
		return nil, fmt.Errorf("chaos: encode shard conf: %w", err)
	}
	return faultsim.SpawnProcs(n, string(payload))
}
