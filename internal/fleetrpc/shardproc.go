package fleetrpc

// Shard-process side of the chaos harness: the child run function that
// faultsim's generic re-exec machinery is deliberately ignorant of.
// RunShardIfChild turns any binary whose main (or TestMain) calls it
// into a spawnable shard process, and SpawnShards launches a fleet of
// them from the same binary. fleetrpc imports faultsim — never the
// reverse — so every engine's test suite can keep importing faultsim's
// deterministic injectors without a cycle through the serve stack.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/serve"
)

// ChildKindShard tags a re-exec payload as a solve shard. An empty
// kind means shard too — the tag exists so other packages (fleetha's
// coordinator children) can share the harness: each Run*IfChild hook
// decodes the kind and claims only its own payloads.
const ChildKindShard = "shard"

// ShardConf is what the parent passes each child shard through the
// environment. Zero values take the serve defaults.
type ShardConf struct {
	// Kind discriminates child flavors sharing one binary; empty and
	// ChildKindShard both mean "solve shard".
	Kind string `json:"kind,omitempty"`
	// MaxFactors caps the shard's factor cache (small values force the
	// eviction/heal path under chaos).
	MaxFactors int `json:"max_factors,omitempty"`
	// MaxBatch/QueueCap tune the shard's batcher.
	MaxBatch int `json:"max_batch,omitempty"`
	QueueCap int `json:"queue_cap,omitempty"`
}

// ChildKind decodes the kind tag from a re-exec payload ("" for
// untagged legacy payloads).
func ChildKind(raw string) string {
	var probe struct {
		Kind string `json:"kind"`
	}
	//gesp:errok — an undecodable payload has no kind; the claiming hook will fail loudly
	_ = json.Unmarshal([]byte(raw), &probe)
	return probe.Kind
}

// RunShardIfChild is the re-exec hook: call it first thing in TestMain
// (or a command's main). In the parent — or a child of another kind —
// it returns immediately; in a shard child spawned by SpawnShards it
// serves until killed and never returns.
func RunShardIfChild() {
	raw, ok := faultsim.ChildPayload()
	if !ok {
		return
	}
	if k := ChildKind(raw); k != "" && k != ChildKindShard {
		return
	}
	if err := runShard(raw); err != nil {
		fmt.Fprintf(os.Stderr, "chaos shard: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runShard(raw string) error {
	var conf ShardConf
	if err := json.Unmarshal([]byte(raw), &conf); err != nil {
		return fmt.Errorf("bad shard conf: %w", err)
	}
	cfg := serve.DefaultConfig()
	if conf.MaxFactors > 0 {
		cfg.MaxFactors = conf.MaxFactors
	}
	if conf.MaxBatch > 0 {
		cfg.MaxBatch = conf.MaxBatch
	}
	if conf.QueueCap > 0 {
		cfg.QueueCap = conf.QueueCap
	}
	srv := NewServer(serve.New(cfg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The ready line is the parent's only synchronization point; it
	// must go out after the listener is accepting.
	faultsim.AnnounceReady(ln.Addr().String())
	return http.Serve(ln, WithChaosDelay(srv.Mux()))
}

// WithChaosDelay wraps a shard mux with a runtime-settable straggler
// injector: POST /v1/chaos/delay {"ms": N} makes every subsequent
// /v1/solve sleep N milliseconds before being handled, turning the
// shard into a latency straggler without killing it. This is how the
// HA chaos tests breach a p999 SLO on demand — and cure it again with
// ms=0. Requests other than solves pass through undelayed so health
// probes keep succeeding: a straggler is slow, not dead.
func WithChaosDelay(next http.Handler) http.Handler {
	var delayMS atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chaos/delay", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			WriteErr(w, fmt.Errorf("chaos delay: POST only"))
			return
		}
		var req ChaosDelayRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			WriteErr(w, fmt.Errorf("bad chaos delay body: %w", err))
			return
		}
		delayMS.Store(req.MS)
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/solve" {
			if ms := delayMS.Load(); ms > 0 {
				time.Sleep(time.Duration(ms) * time.Millisecond)
			}
		}
		next.ServeHTTP(w, r)
	})
	return mux
}

// ChaosDelayRequest sets a shard's injected solve delay.
type ChaosDelayRequest struct {
	MS int64 `json:"ms"`
}

// SetChaosDelay points a shard's straggler injector at ms milliseconds
// per solve (0 cures it).
func (c *Client) SetChaosDelay(ctx context.Context, ms int64) error {
	return c.do(ctx, http.MethodPost, "/v1/chaos/delay", ChaosDelayRequest{MS: ms}, nil)
}

// SpawnShards re-executes the current binary n times as shard
// processes (each must reach RunShardIfChild) and waits for each to
// report its listen address.
func SpawnShards(n int, conf ShardConf) (*faultsim.ProcSet, error) {
	if conf.Kind == "" {
		conf.Kind = ChildKindShard
	}
	payload, err := json.Marshal(conf)
	if err != nil {
		return nil, fmt.Errorf("chaos: encode shard conf: %w", err)
	}
	return faultsim.SpawnProcs(n, string(payload))
}
