// Package fleetrpc turns the sharded solve fleet into a cross-process
// system: each shard is a separate gesp-serve process speaking the
// HTTP/JSON wire format this package defines (the same /v1/matrix and
// /v1/solve bodies cmd/gesp-serve has always spoken, plus /v1/health,
// /v1/handoff, and /v1/degraded), and a client-side router places
// requests over those processes with the consistent-hash ring the
// in-process fleet already uses.
//
// What a process boundary adds, and this package owns:
//
//   - health-checked membership: a prober walks every member on an
//     interval, failure-count thresholds drive an alive → suspect →
//     dead state machine, and a death rebuilds the ring (atomic swap)
//     and re-replicates registered patterns onto the survivors;
//   - a retry/timeout/backoff layer: jittered exponential backoff
//     under a per-request deadline budget, Retry-After respected,
//     typed retryable-vs-terminal errors (solves are idempotent, so
//     retrying them is always safe);
//   - a hedging budget: straggler hedges race a replica only while the
//     shared token bucket (fleet.HedgeBudget) grants tokens, so a
//     straggler storm cannot double fleet load;
//   - graceful degradation: when every placement is down and healing
//     fails, the solve falls back to the resilience ladder's iterative
//     path (ILU0-preconditioned GMRES on the registered matrix) on any
//     live shard instead of failing the request.
package fleetrpc

import (
	"fmt"

	"gesp/internal/sparse"
)

// MatrixRequest is the POST /v1/matrix body: a triplet (COO) matrix.
// Duplicate (row, col) entries are summed, the usual assembly rule.
type MatrixRequest struct {
	N    int       `json:"n"`
	Rows []int     `json:"rows"`
	Cols []int     `json:"cols"`
	Vals []float64 `json:"vals"`
}

// MatrixResponse answers a submit with the solve handle.
type MatrixResponse struct {
	Handle string `json:"handle"`
	N      int    `json:"n"`
	Nnz    int    `json:"nnz"`
}

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	Handle string    `json:"handle"`
	B      []float64 `json:"b"`
}

// SolveResponse carries one solution vector.
type SolveResponse struct {
	X []float64 `json:"x"`
}

// HealthResponse is the GET /v1/health body: deliberately tiny, so the
// prober's cost on a loaded shard is one atomic load and one cheap
// cache-occupancy read.
type HealthResponse struct {
	Status     string `json:"status"`
	QueueDepth int64  `json:"queue_depth"`
	Factors    int    `json:"factors"`
}

// HandoffResponse answers POST /v1/handoff: the shard has drained
// (queued solves finished, admission closed) and these are the handles
// whose factors were resident. Factors themselves cannot cross a
// process boundary, so the coordinator re-homes each handle by
// re-submitting its registered matrix to the new ring owner.
type HandoffResponse struct {
	Handles []string `json:"handles"`
}

// DegradedRequest is the POST /v1/degraded body: solve A·x = b
// iteratively from the raw matrix, without factoring or caching — the
// request of last resort when a pattern's owner and replicas are all
// dead and the caller still holds the matrix.
type DegradedRequest struct {
	Matrix MatrixRequest `json:"matrix"`
	B      []float64     `json:"b"`
}

// DegradedResponse reports the iterative solve.
type DegradedResponse struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WireMatrix encodes a CSC matrix as the triplet wire form.
func WireMatrix(a *sparse.CSC) MatrixRequest {
	nnz := a.Nnz()
	req := MatrixRequest{
		N:    a.Rows,
		Rows: make([]int, 0, nnz),
		Cols: make([]int, 0, nnz),
		Vals: make([]float64, 0, nnz),
	}
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			req.Rows = append(req.Rows, a.RowInd[p])
			req.Cols = append(req.Cols, j)
			req.Vals = append(req.Vals, a.Val[p])
		}
	}
	return req
}

// AssembleMatrix validates and assembles the wire triplet form into a
// CSC matrix, summing duplicate entries.
func AssembleMatrix(req MatrixRequest) (*sparse.CSC, error) {
	if req.N <= 0 {
		return nil, fmt.Errorf("matrix dimension %d, want positive", req.N)
	}
	if len(req.Rows) != len(req.Vals) || len(req.Cols) != len(req.Vals) {
		return nil, fmt.Errorf("triplet arrays disagree: %d rows, %d cols, %d vals",
			len(req.Rows), len(req.Cols), len(req.Vals))
	}
	t := sparse.NewTriplet(req.N, req.N)
	for k := range req.Vals {
		i, j := req.Rows[k], req.Cols[k]
		if i < 0 || i >= req.N || j < 0 || j >= req.N {
			return nil, fmt.Errorf("entry %d at (%d,%d) outside %dx%d", k, i, j, req.N, req.N)
		}
		t.Append(i, j, req.Vals[k])
	}
	return t.ToCSC(), nil
}
