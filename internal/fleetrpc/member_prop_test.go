package fleetrpc

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// memberEvent is one input to the membership state machine.
type memberEvent int

const (
	evProbeOK     memberEvent = iota // healthy probe: reviveOnProbe
	evProbeFail                      // failed probe: reportFailure
	evRequestOK                      // request-path success: reportSuccess
	evRequestFail                    // transport-failed request: reportFailure
	evDrain                          // administrative drain: markDead
	numMemberEvents
)

func (e memberEvent) String() string {
	return [...]string{"probe-ok", "probe-fail", "request-ok", "request-fail", "drain"}[e]
}

// apply feeds one event and returns the (died, rejoined) edge signals.
func apply(m *member, e memberEvent, suspectAfter, deadAfter int, now time.Time) (died, rejoined bool) {
	switch e {
	case evProbeOK:
		rejoined = m.reviveOnProbe(now)
	case evProbeFail, evRequestFail:
		died = m.reportFailure(suspectAfter, deadAfter, now)
	case evRequestOK:
		m.reportSuccess(now)
	case evDrain:
		m.markDead(now)
	}
	return died, rejoined
}

// TestMemberTransitionTable drives the state machine through every
// (state, failures-at-threshold-boundary, event) cell and checks the
// successor state against the specification:
//
//	alive:   probe-fail/request-fail count up; at SuspectAfter -> suspect
//	suspect: failures keep counting; at DeadAfter -> dead (died fires once)
//	         any success -> alive, failures zeroed
//	dead:    request-ok and request-fail are ignored — only probe-ok
//	         revives (rejoined fires once), and drain keeps it dead
func TestMemberTransitionTable(t *testing.T) {
	const suspectAfter, deadAfter = 2, 4
	now := time.Unix(0, 0)

	// reach puts a fresh member into the wanted state with a known
	// failure count.
	reach := func(state MemberState, failures int) *member {
		m := newMember(0, "x", now)
		switch state {
		case StateAlive:
		case StateSuspect:
			for i := 0; i < suspectAfter; i++ {
				m.reportFailure(suspectAfter, deadAfter, now)
			}
		case StateDead:
			m.markDead(now)
		}
		// top up the failure counter without crossing the next threshold
		for m.failureCount() < failures {
			m.reportFailure(suspectAfter, deadAfter, now)
		}
		if got := m.currentState(); got != state {
			t.Fatalf("setup: wanted %v, got %v", state, got)
		}
		return m
	}

	type cell struct {
		from     MemberState
		failures int
		ev       memberEvent
		want     MemberState
		wantDied bool
		wantRejo bool
	}
	cells := []cell{
		// alive
		{StateAlive, 0, evProbeOK, StateAlive, false, false},
		{StateAlive, 0, evRequestOK, StateAlive, false, false},
		{StateAlive, 0, evProbeFail, StateAlive, false, false},     // 1 < suspectAfter
		{StateAlive, 1, evProbeFail, StateSuspect, false, false},   // hits suspectAfter
		{StateAlive, 1, evRequestFail, StateSuspect, false, false}, // request-path failures count too
		{StateAlive, 0, evDrain, StateDead, false, false},
		// suspect
		{StateSuspect, 2, evProbeOK, StateAlive, false, false},
		{StateSuspect, 2, evRequestOK, StateAlive, false, false},   // request success recovers a suspect
		{StateSuspect, 2, evProbeFail, StateSuspect, false, false}, // 3 < deadAfter
		{StateSuspect, 3, evProbeFail, StateDead, true, false},     // hits deadAfter, died edge
		{StateSuspect, 3, evRequestFail, StateDead, true, false},
		{StateSuspect, 2, evDrain, StateDead, false, false}, // drain fires no died edge (caller handles the ring)
		// dead — the satellite's core claim: no request-path signal may
		// resurrect a drained shard; only the prober revives.
		{StateDead, 0, evRequestOK, StateDead, false, false},
		{StateDead, 0, evRequestFail, StateDead, false, false},
		{StateDead, 0, evDrain, StateDead, false, false},
		{StateDead, 0, evProbeOK, StateAlive, false, true}, // the one way back, rejoined edge
	}
	for _, c := range cells {
		t.Run(fmt.Sprintf("%v+%dfail/%v", c.from, c.failures, c.ev), func(t *testing.T) {
			m := reach(c.from, c.failures)
			died, rejoined := apply(m, c.ev, suspectAfter, deadAfter, now)
			if got := m.currentState(); got != c.want {
				t.Errorf("state: got %v, want %v", got, c.want)
			}
			if died != c.wantDied || rejoined != c.wantRejo {
				t.Errorf("edges: got died=%v rejoined=%v, want %v/%v", died, rejoined, c.wantDied, c.wantRejo)
			}
			// success events must zero the failure counter when the member
			// is not dead (the backoff-reset satellite's substrate)
			if (c.ev == evProbeOK || (c.ev == evRequestOK && c.from != StateDead)) && m.failureCount() != 0 {
				t.Errorf("failures not reset: %d", m.failureCount())
			}
		})
	}
}

// TestMemberRandomWalkInvariants drives long random event sequences
// through the machine and checks the global invariants no table can
// enumerate:
//
//  1. dead is only ever left via probe-ok, and every exit reports the
//     rejoined edge exactly once;
//  2. every entry into dead via failures reports the died edge exactly
//     once (drain reports none — the caller already knows);
//  3. a drained member ignores every request-path signal until a probe
//     succeeds: no resurrection by traffic;
//  4. the failure counter is zero right after any success and never
//     decreases otherwise except by reset.
func TestMemberRandomWalkInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	now := time.Unix(0, 0)
	for trial := 0; trial < 200; trial++ {
		suspectAfter := 1 + rng.Intn(3)
		deadAfter := suspectAfter + 1 + rng.Intn(3)
		m := newMember(0, "x", now)
		prev := m.currentState()
		for step := 0; step < 400; step++ {
			ev := memberEvent(rng.Intn(int(numMemberEvents)))
			prevFailures := m.failureCount()
			died, rejoined := apply(m, ev, suspectAfter, deadAfter, now)
			cur := m.currentState()

			if prev == StateDead && cur != StateDead {
				if ev != evProbeOK {
					t.Fatalf("trial %d step %d: left dead via %v", trial, step, ev)
				}
				if !rejoined {
					t.Fatalf("trial %d step %d: dead->alive without rejoined edge", trial, step)
				}
			}
			if rejoined && !(prev == StateDead && cur == StateAlive) {
				t.Fatalf("trial %d step %d: spurious rejoined edge (%v->%v via %v)", trial, step, prev, cur, ev)
			}
			if prev != StateDead && cur == StateDead && ev != evDrain && !died {
				t.Fatalf("trial %d step %d: died into dead via %v without edge", trial, step, ev)
			}
			if died && !(prev == StateSuspect && cur == StateDead) {
				t.Fatalf("trial %d step %d: spurious died edge (%v->%v via %v)", trial, step, prev, cur, ev)
			}
			if prev == StateDead && (ev == evRequestOK || ev == evRequestFail) && cur != StateDead {
				t.Fatalf("trial %d step %d: request-path signal %v resurrected a dead member", trial, step, ev)
			}
			switch ev {
			case evProbeOK:
				if m.failureCount() != 0 {
					t.Fatalf("trial %d step %d: probe-ok left failures=%d", trial, step, m.failureCount())
				}
			case evRequestOK:
				if cur != StateDead && m.failureCount() != 0 {
					t.Fatalf("trial %d step %d: request-ok left failures=%d", trial, step, m.failureCount())
				}
			case evProbeFail, evRequestFail:
				if m.failureCount() != prevFailures+1 {
					t.Fatalf("trial %d step %d: failure did not count (%d -> %d)", trial, step, prevFailures, m.failureCount())
				}
			}
			prev = cur
		}
	}
}
