// Process-level chaos tests: real shard processes, real signals. The
// external test package breaks the faultsim -> fleetrpc import cycle,
// and TestMain's RunShardIfChild hook is what lets this test binary
// re-execute itself as the shard processes it then kills.
package fleetrpc_test

import (
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gesp/internal/faultsim"
	"gesp/internal/fleetrpc"
	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

func TestMain(m *testing.M) {
	fleetrpc.RunShardIfChild()
	os.Exit(m.Run())
}

type chaosSystem struct {
	a    *sparse.CSC
	b    []float64
	want []float64
	h    serve.Handle
}

// chaosFleet spawns n real shard processes and a coordinator tuned for
// fast failure detection, then submits and warms the named systems.
func chaosFleet(t *testing.T, n int, names []string) (*faultsim.ProcSet, *fleetrpc.Fleet, []chaosSystem) {
	t.Helper()
	procs, err := fleetrpc.SpawnShards(n, fleetrpc.ShardConf{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(procs.Close)

	cfg := fleetrpc.Config{
		Addrs:            procs.Addrs(),
		Replication:      2,
		ProbeInterval:    10 * time.Millisecond,
		ProbeTimeout:     100 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        3,
		Retry:            fleetrpc.Backoff{Attempts: 5, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
		RequestTimeout:   300 * time.Millisecond,
		HedgeAfter:       30 * time.Millisecond,
		HedgeBudget:      0.3,
		HedgeBurst:       8,
		DegradedFallback: true,
	}
	f, err := fleetrpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	var pool []chaosSystem
	for _, name := range names {
		gen, ok := matgen.Lookup(name)
		if !ok {
			t.Fatalf("testbed matrix %s missing", name)
		}
		a := gen.Generate(0.25)
		want := make([]float64, a.Rows)
		for i := range want {
			want[i] = 1
		}
		b := make([]float64, a.Rows)
		a.MatVec(b, want)
		h, err := f.Submit(a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := f.Solve(h, b); err != nil { // warm the factor caches
			t.Fatalf("%s warm solve: %v", name, err)
		}
		pool = append(pool, chaosSystem{a: a, b: b, want: want, h: h})
	}
	return procs, f, pool
}

// hammer runs closed-loop solvers against the pool until stop closes,
// counting solves and recording the first error.
func hammer(f *fleetrpc.Fleet, pool []chaosSystem, workers int, stop chan struct{}) (*sync.WaitGroup, *atomic.Uint64, *atomic.Value) {
	var wg sync.WaitGroup
	var solves atomic.Uint64
	var firstErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sys := pool[rng.Intn(len(pool))]
				if _, err := f.Solve(sys.h, sys.b); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				solves.Add(1)
			}
		}(int64(1000 + w))
	}
	return &wg, &solves, &firstErr
}

func awaitMemberState(t *testing.T, f *fleetrpc.Fleet, id int, want string, timeout time.Duration) time.Time {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, m := range f.Members() {
			if m.ID == id && m.State == want {
				return m.ChangedAt
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("member %d never became %s; members: %+v", id, want, f.Members())
	return time.Time{}
}

// TestChaosSIGKILL is the acceptance chaos test: SIGKILL a shard
// process under load; the membership layer must detect the death and
// the retry ladder must absorb it with zero client-visible failures.
func TestChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos: skipped in -short")
	}
	procs, f, pool := chaosFleet(t, 3, []string{"SHERMAN4", "GEMAT11"})

	stop := make(chan struct{})
	wg, solves, firstErr := hammer(f, pool, 4, stop)

	time.Sleep(100 * time.Millisecond)
	target := f.Ring().Owner(pool[0].h.Key.Pattern)
	killAt := time.Now()
	if err := procs.Procs[target].Kill(); err != nil {
		t.Fatal(err)
	}
	diedAt := awaitMemberState(t, f, target, "dead", 5*time.Second)

	time.Sleep(200 * time.Millisecond) // keep hammering the rebuilt ring
	close(stop)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatalf("client-visible failure across SIGKILL: %v", err)
	}
	if solves.Load() == 0 {
		t.Fatal("load loop never solved")
	}
	if det := diedAt.Sub(killAt); det > 3*time.Second {
		t.Fatalf("death detection took %v", det)
	}
	st := f.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d failed requests, want 0; stats:\n%s", st.Failed, st)
	}
	if st.Deaths != 1 || st.Rebuilds == 0 {
		t.Fatalf("membership accounting: deaths=%d rebuilds=%d", st.Deaths, st.Rebuilds)
	}
	// Everything must still solve correctly on the survivors.
	for _, sys := range pool {
		x, err := f.Solve(sys.h, sys.b)
		if err != nil {
			t.Fatal(err)
		}
		if e := sparse.RelErrInf(x, sys.want); e > 2e-3 {
			t.Fatalf("post-kill solution error %g", e)
		}
	}
}

// TestChaosSIGSTOP: a stopped process keeps its sockets open, so
// requests hang instead of failing fast — the probe timeout must
// declare it dead, and SIGCONT must bring it back through the
// prober-only revival path.
func TestChaosSIGSTOP(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos: skipped in -short")
	}
	procs, f, pool := chaosFleet(t, 3, []string{"SHERMAN4", "GEMAT11"})

	stop := make(chan struct{})
	wg, _, firstErr := hammer(f, pool, 4, stop)

	time.Sleep(100 * time.Millisecond)
	target := f.Ring().Owner(pool[0].h.Key.Pattern)
	if err := procs.Procs[target].Stop(); err != nil {
		t.Fatal(err)
	}
	awaitMemberState(t, f, target, "dead", 5*time.Second)

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatalf("client-visible failure across SIGSTOP: %v", err)
	}

	// SIGCONT: the next healthy probe must revive the member and
	// rebuild the ring with it back in.
	if err := procs.Procs[target].Cont(); err != nil {
		t.Fatal(err)
	}
	awaitMemberState(t, f, target, "alive", 5*time.Second)
	st := f.Stats()
	if st.Rejoins == 0 {
		t.Fatalf("revived member never counted a rejoin: %+v", st)
	}
	onRing := false
	for _, id := range f.Ring().Shards() {
		if id == target {
			onRing = true
		}
	}
	if !onRing {
		t.Fatal("revived member not back on the ring")
	}
	if st.Failed != 0 {
		t.Fatalf("%d failed requests, want 0; stats:\n%s", st.Failed, st)
	}
}
