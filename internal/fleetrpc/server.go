package fleetrpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"gesp/internal/krylov"
	"gesp/internal/resilience"
	"gesp/internal/serve"
)

// Server exposes one serve.Service shard over the fleet wire format.
// cmd/gesp-serve mounts exactly this mux, so any gesp-serve process is
// a fleet-joinable shard with no extra flags.
type Server struct {
	svc *serve.Service
	// Degraded tunes the /v1/degraded iterative solve; zero fields take
	// defaultDegradedOptions.
	Degraded krylov.Options
	// draining flips when a handoff has closed the service: health
	// reports it so the coordinator's prober retires this member instead
	// of resurrecting a shard that still answers but admits nothing.
	draining atomic.Bool
}

// NewServer wraps a serve.Service in the wire handlers.
func NewServer(svc *serve.Service) *Server { return &Server{svc: svc} }

// Service returns the wrapped shard service (the coordinator-side
// tests reach through it to inspect cache state).
func (s *Server) Service() *serve.Service { return s.svc }

// Mux returns the shard's HTTP API:
//
//	POST /v1/matrix    submit a system, get a handle
//	POST /v1/solve     solve one right-hand side against a handle
//	GET  /v1/stats     serve.Stats JSON
//	GET  /v1/health    cheap liveness + load signal for the prober
//	POST /v1/handoff   drain: finish queued work, return resident handles
//	POST /v1/degraded  iterative solve from a raw matrix (no factoring)
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("POST /v1/handoff", s.handleHandoff)
	mux.HandleFunc("POST /v1/degraded", s.handleDegraded)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("fleetrpc: encode response: %v", err)
	}
}

// WriteErr maps the serve error taxonomy onto HTTP statuses the client
// layer classifies: 503/429 retryable (with Retry-After where the
// error carries a hint), 410 heal-by-resubmit, 504 deadline, 422
// poisoned input, 400 everything else.
func WriteErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var oe *serve.OverloadedError
	switch {
	case errors.As(err, &oe):
		status = http.StatusServiceUnavailable
		SetRetryAfter(w, oe.RetryAfter)
	case errors.Is(err, serve.ErrOverloaded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrHandleExpired):
		status = http.StatusGone // resubmit the matrix
	case errors.Is(err, serve.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, resilience.ErrNonFiniteRHS):
		status = http.StatusUnprocessableEntity // NaN/Inf in b; no rung can fix the input
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// SetRetryAfter writes a Retry-After header, rounding the duration UP
// to whole seconds with a floor of 1: Retry-After speaks integer
// seconds, and truncating a sub-second hint to 0 tells every rejected
// client to retry immediately — the stampede the header exists to
// prevent.
func SetRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteErr(w, fmt.Errorf("bad matrix body: %w", err))
		return
	}
	a, err := AssembleMatrix(req)
	if err != nil {
		WriteErr(w, err)
		return
	}
	h, err := s.svc.Submit(a)
	if err != nil {
		WriteErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MatrixResponse{Handle: h.String(), N: h.N, Nnz: a.Nnz()})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteErr(w, fmt.Errorf("bad solve body: %w", err))
		return
	}
	h, err := serve.ParseHandle(req.Handle)
	if err != nil {
		WriteErr(w, err)
		return
	}
	x, err := s.svc.SolveCtx(r.Context(), h, req.B)
	if err != nil {
		WriteErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SolveResponse{X: x})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     status,
		QueueDepth: s.svc.QueueDepth(),
		Factors:    st.FactorEntries,
	})
}

// handleHandoff drains the shard: admission closes, queued solves
// finish, and the resident factor keys come back so the coordinator
// can re-home them. The factors themselves die with the process — over
// a wire, moving them means re-factoring from the registered matrices,
// which the coordinator does against the post-drain ring.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	s.draining.Store(true)
	exp := s.svc.Drain()
	res := HandoffResponse{Handles: make([]string, 0, len(exp.Factors))}
	for _, f := range exp.Factors {
		res.Handles = append(res.Handles, serve.Handle{Key: f.Key, N: f.N}.String())
	}
	writeJSON(w, http.StatusOK, res)
}

// defaultDegradedOptions bound the last-resort iterative solve: a
// looser tolerance than the direct path's refinement target (the point
// is an answer, not eps-level backward error) under a hard iteration
// cap so a hopeless system cannot pin a surviving shard.
func defaultDegradedOptions() krylov.Options {
	return krylov.Options{Tol: 1e-8, MaxIter: 2000, Restart: 60}
}

func (s *Server) handleDegraded(w http.ResponseWriter, r *http.Request) {
	var req DegradedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteErr(w, fmt.Errorf("bad degraded body: %w", err))
		return
	}
	a, err := AssembleMatrix(req.Matrix)
	if err != nil {
		WriteErr(w, err)
		return
	}
	if len(req.B) != a.Rows {
		WriteErr(w, fmt.Errorf("right-hand side length %d, want %d", len(req.B), a.Rows))
		return
	}
	opts := s.Degraded
	d := defaultDegradedOptions()
	if opts.Tol == 0 {
		opts.Tol = d.Tol
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = d.MaxIter
	}
	if opts.Restart == 0 {
		opts.Restart = d.Restart
	}
	ctx := r.Context()
	opts.Cancel = func() bool { return ctx.Err() != nil }
	// ILU0 is the preconditioner of the resilience ladder's iterative
	// rung when no factors exist; a structurally unsuitable matrix
	// falls back to unpreconditioned GMRES.
	var pre krylov.Preconditioner = krylov.Identity{}
	if ilu, ierr := krylov.NewILU0(a); ierr == nil {
		pre = ilu
	}
	x := make([]float64, a.Rows)
	x, st := krylov.GMRES(a, pre, x, req.B, opts)
	switch {
	case st.Canceled:
		WriteErr(w, context.DeadlineExceeded)
	case !st.Converged:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: fmt.Sprintf("degraded solve did not converge: residual %.3g after %d iterations", st.Residual, st.Iterations),
		})
	default:
		writeJSON(w, http.StatusOK, DegradedResponse{X: x, Iterations: st.Iterations, Residual: st.Residual})
	}
}
