package fleetrpc

import (
	"sync"
	"time"
)

// MemberState is the health state machine's position for one shard
// process:
//
//	alive ──failures≥SuspectAfter──▶ suspect ──failures≥DeadAfter──▶ dead
//	  ▲                                 │                              │
//	  └────────── any success ──────────┴───────── any success ────────┘
//
// Failures come from two feeds — the periodic /v1/health prober and
// transport errors on real requests — so a dead shard is usually
// detected in one probe interval even with zero traffic, and faster
// under load. A suspect member still serves (requests it holds the
// only factors for would otherwise refactor), but placement prefers
// alive members. A dead member leaves the ring entirely: its keys move
// to the ring successors and the coordinator re-replicates every
// registered pattern whose placement changed.
type MemberState int32

const (
	StateAlive MemberState = iota
	StateSuspect
	StateDead
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// MemberStatus is one member's externally visible health snapshot.
// ChangedAt timestamps the last state transition — the fleetproc
// experiment measures failover detection latency as the dead
// transition's ChangedAt minus the kill time.
type MemberStatus struct {
	ID        int       `json:"id"`
	Addr      string    `json:"addr"`
	State     string    `json:"state"`
	Failures  int       `json:"failures"`
	ChangedAt time.Time `json:"changed_at"`
	// QueueDepth is the shard's queued-work gauge from its latest
	// healthy probe — the SLO controller's congestion signal.
	QueueDepth int64         `json:"queue_depth"`
	Sickness   time.Duration `json:"-"` // time since leaving alive; 0 when alive
}

// member is one shard process in the coordinator's membership table.
// The id is its index in Fleet.members and its shard id on the ring;
// both are fixed at construction, as is the client. Everything
// health-related is guarded.
type member struct {
	id   int
	addr string
	cli  *Client

	mu sync.Mutex
	//gesp:guardedby:mu
	state MemberState
	//gesp:guardedby:mu
	failures int
	//gesp:guardedby:mu
	changedAt time.Time
	//gesp:guardedby:mu
	lastQueue int64
}

func newMember(id int, addr string, now time.Time) *member {
	return &member{id: id, addr: addr, cli: NewClient(addr), changedAt: now}
}

// currentState reads the member's state.
func (m *member) currentState() MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// failureCount reads the member's consecutive-failure count — the
// retry layer's sickness signal (folded into the backoff schedule and
// reset by the member's first success).
func (m *member) failureCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failures
}

// noteHealth stores the gauges from a healthy probe response.
func (m *member) noteHealth(res HealthResponse) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastQueue = res.QueueDepth
}

// queueDepth reads the last probed queue gauge.
func (m *member) queueDepth() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastQueue
}

// reportFailure counts one failed probe or transport-failed request
// and advances the state machine. It returns true exactly once per
// death — the caller's cue to rebuild the ring and re-replicate.
func (m *member) reportFailure(suspectAfter, deadAfter int, now time.Time) (died bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures++
	switch {
	case m.state == StateAlive && m.failures >= suspectAfter:
		m.state = StateSuspect
		m.changedAt = now
	case m.state == StateSuspect && m.failures >= deadAfter:
		m.state = StateDead
		m.changedAt = now
		return true
	}
	return false
}

// reportSuccess records a request-path success: failures reset and a
// suspect recovers. Dead members stay dead here — a drained shard
// still answers requests (with 503s that decode fine), and only the
// prober, which can see the health status, may resurrect.
func (m *member) reportSuccess(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateDead {
		return
	}
	if m.state == StateSuspect {
		m.state = StateAlive
		m.changedAt = now
	}
	m.failures = 0
}

// reviveOnProbe records a healthy probe: failures reset, any state
// returns to alive. It returns true exactly once per dead→alive
// transition — the caller's cue to rebuild the ring with the member
// back in.
func (m *member) reviveOnProbe(now time.Time) (rejoined bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rejoined = m.state == StateDead
	if m.state != StateAlive {
		m.state = StateAlive
		m.changedAt = now
	}
	m.failures = 0
	return rejoined
}

// markDead administratively kills the member — the graceful-drain
// path, where the shard said goodbye instead of going silent.
func (m *member) markDead(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateDead {
		m.state = StateDead
		m.changedAt = now
	}
}

// status snapshots the member for Fleet.Members.
func (m *member) status(now time.Time) MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MemberStatus{
		ID:         m.id,
		Addr:       m.addr,
		State:      m.state.String(),
		Failures:   m.failures,
		ChangedAt:  m.changedAt,
		QueueDepth: m.lastQueue,
	}
	if m.state != StateAlive {
		st.Sickness = now.Sub(m.changedAt)
	}
	return st
}
