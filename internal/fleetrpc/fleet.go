package fleetrpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gesp/internal/fleet"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// ErrNoLiveShards means every member is dead (or administratively
// drained) — there is nowhere to place a request right now. It is
// retryable: the prober revives members the moment they answer again.
var ErrNoLiveShards = errors.New("fleetrpc: no live shards")

// maxReplication caps a pattern's placement width, mirroring the
// in-process fleet: owner plus up to three replicas, so placement
// buffers stay on the stack.
const maxReplication = 4

// Config parameterizes the cross-process coordinator.
type Config struct {
	// Addrs are the shard processes' host:port listen addresses. Member
	// ids are the indexes into this slice.
	Addrs []string
	// Replication is how many members hold each pattern (owner
	// included): every Submit lands on the owner and Replication-1 ring
	// successors, so a failover target already has the factors. <=0
	// takes 2; capped at maxReplication.
	Replication int
	// VNodes is the consistent-hash points per member (fleet.DefaultVNodes
	// when <=0).
	VNodes int

	// ProbeInterval is the health-check period (50ms when <=0): every
	// member is probed concurrently each tick.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /v1/health round trip (4x ProbeInterval
	// when <=0). A SIGSTOPped shard accepts the connection and then
	// hangs, so the timeout — not a refused connect — is what detects a
	// partitioned member.
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that moves a member
	// alive -> suspect (placement deprioritizes it); <=0 takes 1.
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that moves a suspect
	// member to dead (ring rebuild + re-replication); values <=
	// SuspectAfter take SuspectAfter+2.
	DeadAfter int

	// Retry is the per-request retry/backoff policy.
	Retry Backoff
	// RequestTimeout bounds one solve attempt on one placement (2s when
	// <=0) — the per-attempt slice of the overall deadline budget, which
	// the caller's context owns.
	RequestTimeout time.Duration
	// SubmitTimeout bounds one matrix submit (30s when <=0): a cold
	// submit runs analysis and numeric factorization, legitimately far
	// slower than any solve.
	SubmitTimeout time.Duration

	// HedgeAfter launches a budget-gated hedge to the first replica when
	// the primary hasn't answered within this duration. <=0 disables
	// hedging.
	HedgeAfter time.Duration
	// HedgeBudget/HedgeBurst parameterize the shared hedge token bucket
	// (see fleet.HedgeBudget); Budget<=0 leaves hedging unlimited.
	HedgeBudget float64
	HedgeBurst  float64

	// DegradedFallback, when set, answers a solve whose every placement
	// is down — after retries and healing have failed — by shipping the
	// registered matrix to any live member's /v1/degraded iterative
	// path. Slower and less accurate than the direct solve, but an
	// answer instead of an error.
	DegradedFallback bool

	// Seed seeds the coordinator's jitter source (0 takes 1); fixed so
	// retry schedules reproduce in tests.
	Seed int64
}

// DefaultConfig is a coordinator tuned for LAN shards: 2x replication,
// fast probing, hedging after 100ms capped at 10% of traffic, and the
// degraded fallback on.
func DefaultConfig(addrs []string) Config {
	return Config{
		Addrs:            addrs,
		Replication:      2,
		ProbeInterval:    50 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        3,
		HedgeAfter:       100 * time.Millisecond,
		HedgeBudget:      0.1,
		HedgeBurst:       8,
		DegradedFallback: true,
	}
}

func (c *Config) fillDefaults() {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > maxReplication {
		c.Replication = maxReplication
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 4 * c.ProbeInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	c.Retry = c.Retry.fill()
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.SubmitTimeout <= 0 {
		c.SubmitTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fleet is the cross-process coordinator: the consistent-hash router
// the in-process fleet pioneered, speaking the wire format to separate
// gesp-serve processes, with the layers a process boundary demands —
// health-checked membership, retry/backoff, a hedging budget, and
// degraded fallback. Safe for concurrent use.
type Fleet struct {
	cfg     Config
	members []*member
	hedge   *fleet.HedgeBudget
	m       rpcMetrics

	// ring is the current placement over non-dead member ids;
	// immutable, rebuilt and swapped atomically on every membership
	// change so the routing path takes no lock.
	ring atomic.Pointer[fleet.Ring]

	mu sync.Mutex
	// registry keeps every submitted system in wire form, encoded once:
	// the coordinator re-sends these bytes to heal evictions, to
	// re-replicate after a death, and to feed the degraded path.
	//gesp:guardedby:mu
	registry map[serve.Handle]MatrixRequest
	// rng drives retry jitter; seeded so schedules reproduce, guarded
	// because rand.Rand is not concurrency-safe.
	//gesp:guardedby:mu
	rng *rand.Rand

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New builds a coordinator over cfg.Addrs and starts its prober. It
// does not contact the shards — the first probe tick and the first
// request do; a shard that is still starting up just eats a few
// failures and revives on its first healthy probe.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("fleetrpc: no shard addresses")
	}
	cfg.fillDefaults()
	now := time.Now()
	f := &Fleet{
		cfg:      cfg,
		hedge:    fleet.NewHedgeBudget(cfg.HedgeBudget, cfg.HedgeBurst),
		registry: make(map[serve.Handle]MatrixRequest),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stop:     make(chan struct{}),
	}
	ids := make([]int, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		ids[i] = i
		f.members = append(f.members, newMember(i, addr, now))
	}
	f.ring.Store(fleet.NewRing(ids, cfg.VNodes))
	f.wg.Add(1)
	go f.prober()
	return f, nil
}

// Close stops the prober and pending re-replications. Shard processes
// are not touched — they belong to whoever started them.
func (f *Fleet) Close() {
	if !f.closed.CompareAndSwap(false, true) {
		return
	}
	close(f.stop)
	f.wg.Wait()
}

// prober walks every member each tick, concurrently: a wedged member
// must not delay the detection of the next one.
func (f *Fleet) prober() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, mb := range f.members {
				wg.Add(1)
				go func(mb *member) {
					defer wg.Done()
					f.probe(mb)
				}(mb)
			}
			wg.Wait()
		}
	}
}

// probe runs one health check and feeds the membership state machine.
// A shard that answers but reports a non-ok status (draining) counts
// as down: it is leaving on purpose and must exit the ring.
func (f *Fleet) probe(mb *member) {
	f.m.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
	defer cancel()
	res, err := mb.cli.Health(ctx)
	if err == nil && res.Status != "ok" {
		err = fmt.Errorf("%w: %s: shard reports %q", ErrUnreachable, mb.addr, res.Status)
	}
	if err != nil {
		f.m.probeFails.Add(1)
		if mb.reportFailure(f.cfg.SuspectAfter, f.cfg.DeadAfter, time.Now()) {
			f.onDeath(mb)
		}
		return
	}
	if mb.reviveOnProbe(time.Now()) {
		f.onRejoin(mb)
	}
}

// noteResult feeds one request outcome into the membership state
// machine. Only transport-level failures count against health — an
// HTTP error (even a 503) is a live process making a decision. Our own
// cancellation says nothing about the member. Resurrection of dead
// members is the prober's job alone: it is the only observer that can
// tell a restarted shard from a drained one still answering.
func (f *Fleet) noteResult(mb *member, err error) {
	now := time.Now()
	switch {
	case err == nil:
		mb.reportSuccess(now)
	case errors.Is(err, ErrUnreachable) || errors.Is(err, context.DeadlineExceeded):
		if mb.reportFailure(f.cfg.SuspectAfter, f.cfg.DeadAfter, now) {
			f.onDeath(mb)
		}
	case errors.Is(err, context.Canceled):
		// hedge loser or caller gave up; no health signal either way
	default:
		// a decoded HTTP response: the process is alive
		mb.reportSuccess(now)
	}
}

// onDeath and onRejoin handle the two ring-changing transitions:
// rebuild placement, then re-replicate the registry under the new ring
// so every pattern's factors exist at its (possibly new) owner and
// replicas before traffic needs them.
func (f *Fleet) onDeath(mb *member) {
	f.m.deaths.Add(1)
	f.rebuildRing()
	f.rereplicateAsync()
}

func (f *Fleet) onRejoin(mb *member) {
	f.m.rejoins.Add(1)
	f.rebuildRing()
	f.rereplicateAsync()
}

// rebuildRing recomputes the ring over the non-dead members and swaps
// it in. Serialized under mu so a stale membership read cannot
// overwrite a newer ring.
func (f *Fleet) rebuildRing() {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int, 0, len(f.members))
	for _, mb := range f.members {
		if mb.currentState() != StateDead {
			ids = append(ids, mb.id)
		}
	}
	f.ring.Store(fleet.NewRing(ids, f.cfg.VNodes))
	f.m.rebuilds.Add(1)
}

// rereplicateAsync re-submits every registered matrix to its placement
// under the current ring, in the background: factors move to their
// new owners ahead of the traffic that will want them, and members
// already holding them answer from cache (the serve layer's factor
// cache makes a duplicate submit a lookup, not a refactorization).
func (f *Fleet) rereplicateAsync() {
	if f.closed.Load() {
		return
	}
	f.mu.Lock()
	wires := make([]MatrixRequest, 0, len(f.registry))
	//gesp:unordered — each pattern re-homes independently; placement order is irrelevant
	for _, w := range f.registry {
		wires = append(wires, w)
	}
	f.mu.Unlock()
	if len(wires) == 0 {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for _, w := range wires {
			select {
			case <-f.stop:
				return
			default:
			}
			pattern, ok := wirePattern(w)
			if !ok {
				continue
			}
			var buf [maxReplication]*member
			n := f.placementInto(buf[:], pattern)
			for i := 0; i < n; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), f.cfg.SubmitTimeout)
				_, err := buf[i].cli.SubmitWire(ctx, w)
				cancel()
				f.noteResult(buf[i], err)
				if err == nil {
					f.m.rereplicated.Add(1)
				}
			}
		}
	}()
}

// wirePattern recomputes a wire matrix's pattern fingerprint by
// assembling it; re-replication is rare (membership changes only) so
// the assembly cost is irrelevant next to the factorization it seeds.
func wirePattern(w MatrixRequest) (uint64, bool) {
	a, err := AssembleMatrix(w)
	if err != nil {
		return 0, false
	}
	return sparse.PatternHash(a), true
}

// placementInto writes the pattern's placement — healthiest first —
// into dst and returns how many entries it wrote. The ring (which
// excludes dead members) proposes owner + successors; alive members
// sort before suspects so a flapping shard serves only when nothing
// better holds the factors.
func (f *Fleet) placementInto(dst []*member, pattern uint64) int {
	ring := f.ring.Load()
	var ids [maxReplication]int
	rf := f.cfg.Replication
	n := ring.ReplicasInto(ids[:rf], pattern)
	k := 0
	for pass := 0; pass < 2; pass++ {
		want := StateAlive
		if pass == 1 {
			want = StateSuspect
		}
		for i := 0; i < n && k < len(dst); i++ {
			if mb := f.members[ids[i]]; mb.currentState() == want {
				dst[k] = mb
				k++
			}
		}
	}
	return k
}

// sleep pauses for the retry schedule's next wait (attempt counts
// retries, 0 = first retry), honoring the shard's Retry-After hint and
// the caller's context.
func (f *Fleet) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	f.mu.Lock()
	u := f.rng.Float64()
	f.mu.Unlock()
	w := f.cfg.Retry.wait(attempt, u, retryAfter)
	t := time.NewTimer(w)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit registers a system with the fleet: the matrix is encoded
// once, factored on its pattern's owner and replicas, and kept in the
// coordinator's registry for healing, re-replication, and the
// degraded path.
func (f *Fleet) Submit(a *sparse.CSC) (serve.Handle, error) {
	return f.SubmitCtx(context.Background(), a)
}

// SubmitCtx is Submit under a caller-owned context.
func (f *Fleet) SubmitCtx(ctx context.Context, a *sparse.CSC) (serve.Handle, error) {
	if f.closed.Load() {
		return serve.Handle{}, serve.ErrClosed
	}
	wire := WireMatrix(a)
	pattern := sparse.PatternHash(a)
	var lastErr error
	for attempt := 0; attempt < f.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			f.m.retries.Add(1)
			if err := f.sleep(ctx, attempt-1, RetryAfterHint(lastErr)); err != nil {
				return serve.Handle{}, err
			}
		}
		var buf [maxReplication]*member
		n := f.placementInto(buf[:], pattern)
		if n == 0 {
			lastErr = ErrNoLiveShards
			continue
		}
		sctx, cancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
		h, err := buf[0].cli.SubmitWire(sctx, wire)
		cancel()
		f.noteResult(buf[0], err)
		if err != nil {
			lastErr = err
			if !Retryable(err) {
				return serve.Handle{}, err
			}
			continue
		}
		f.mu.Lock()
		f.registry[h] = wire
		f.mu.Unlock()
		for i := 1; i < n; i++ {
			rctx, rcancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
			_, rerr := buf[i].cli.SubmitWire(rctx, wire)
			rcancel()
			f.noteResult(buf[i], rerr)
			//gesp:errok — replica population is best-effort; the owner holds the factors and re-replication retries on the next membership change
			_ = rerr
		}
		return h, nil
	}
	return serve.Handle{}, lastErr
}

// Solve routes one right-hand side with the background context.
func (f *Fleet) Solve(h serve.Handle, b []float64) ([]float64, error) {
	return f.SolveCtx(context.Background(), h, b)
}

// SolveCtx routes one right-hand side through the full resilience
// ladder: placement on the live ring, hedged against the first replica
// under the hedge budget, failed over on fast errors, retried with
// jittered backoff (honoring Retry-After) on retryable ones, healed by
// re-submit on eviction, and — when every placement is gone — answered
// by the degraded iterative path on any live member.
func (f *Fleet) SolveCtx(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	if f.closed.Load() {
		return nil, serve.ErrClosed
	}
	f.m.routed.Add(1)
	f.hedge.Accrue()
	var lastErr error
	for attempt := 0; attempt < f.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			f.m.retries.Add(1)
			if err := f.sleep(ctx, attempt-1, RetryAfterHint(lastErr)); err != nil {
				f.m.failed.Add(1)
				return nil, err
			}
		}
		var buf [maxReplication]*member
		n := f.placementInto(buf[:], h.Key.Pattern)
		if n == 0 {
			lastErr = ErrNoLiveShards
			continue
		}
		primary := buf[0]
		var replica *member
		if n > 1 {
			replica = buf[1]
		}
		x, err := f.solvePlaced(ctx, primary, replica, h, b)
		if err == nil {
			return x, nil
		}
		lastErr = err
		switch {
		case Expired(err):
			// Factors evicted (or the shard restarted empty): re-factor
			// from the registry and go around — without burning the
			// request on an error the next attempt can cure.
			if herr := f.heal(ctx, h); herr != nil {
				f.m.failed.Add(1)
				return nil, err
			}
			f.m.resubmits.Add(1)
		case !Retryable(err):
			f.m.failed.Add(1)
			return nil, err
		}
	}
	if f.cfg.DegradedFallback {
		if x, derr := f.solveDegraded(ctx, h, b); derr == nil {
			f.m.degraded.Add(1)
			return x, nil
		}
	}
	f.m.failed.Add(1)
	return nil, lastErr
}

// placedResult is one leg of a placed attempt.
type placedResult struct {
	x    []float64
	err  error
	from *member
}

// solvePlaced runs one attempt against a placement: the primary,
// raced after HedgeAfter by a budget-gated hedge to the replica, with
// an immediate failover to the replica when the primary fails fast
// with a retryable error. First success wins; the loser's wait is
// cancelled with the attempt context.
func (f *Fleet) solvePlaced(ctx context.Context, primary, replica *member, h serve.Handle, b []float64) ([]float64, error) {
	actx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
	defer cancel()
	ch := make(chan placedResult, 2)
	launch := func(mb *member) {
		x, err := mb.cli.Solve(actx, h, b)
		f.noteResult(mb, err)
		ch <- placedResult{x: x, err: err, from: mb}
	}
	go launch(primary)
	inFlight := 1
	hedged := false
	var hedgeC <-chan time.Time
	if replica != nil && f.cfg.HedgeAfter > 0 {
		t := time.NewTimer(f.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var primErr error
	for {
		select {
		case r := <-ch:
			inFlight--
			if r.err == nil {
				if hedged && r.from == replica {
					f.m.hedgeWins.Add(1)
				}
				return r.x, nil
			}
			if r.from == primary {
				primErr = r.err
				if replica != nil && inFlight == 0 && Retryable(r.err) && actx.Err() == nil {
					// primary failed fast and the replica was never tried:
					// fail over now, inside the same attempt — no backoff,
					// no hedge token.
					f.m.failovers.Add(1)
					hedgeC = nil
					go launch(replica)
					inFlight++
					continue
				}
			}
			if inFlight == 0 {
				if primErr != nil {
					// the primary's error is the one the retry ladder
					// classifies (overload, eviction, unreachable)
					return nil, primErr
				}
				return nil, r.err
			}
		case <-hedgeC:
			hedgeC = nil
			if f.hedge.TryStake() {
				f.m.hedged.Add(1)
				hedged = true
				go launch(replica)
				inFlight++
			}
		}
	}
}

// heal re-factors an evicted handle at its current owner from the
// registered wire matrix.
func (f *Fleet) heal(ctx context.Context, h serve.Handle) error {
	f.mu.Lock()
	wire, ok := f.registry[h]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleetrpc: handle %v has no registered matrix", h.Key)
	}
	var buf [maxReplication]*member
	n := f.placementInto(buf[:], h.Key.Pattern)
	if n == 0 {
		return ErrNoLiveShards
	}
	sctx, cancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
	defer cancel()
	_, err := buf[0].cli.SubmitWire(sctx, wire)
	f.noteResult(buf[0], err)
	return err
}

// solveDegraded is the bottom of the ladder: ship the registered
// matrix to any live member's iterative path. Tried healthiest-first
// over every member (placement no longer matters — there is no cache
// to hit).
func (f *Fleet) solveDegraded(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	f.mu.Lock()
	wire, ok := f.registry[h]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleetrpc: handle %v has no registered matrix", h.Key)
	}
	lastErr := error(ErrNoLiveShards)
	for pass := 0; pass < 2; pass++ {
		want := StateAlive
		if pass == 1 {
			want = StateSuspect
		}
		for _, mb := range f.members {
			if mb.currentState() != want {
				continue
			}
			dctx, cancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
			res, err := mb.cli.SolveDegraded(dctx, wire, b)
			cancel()
			f.noteResult(mb, err)
			if err == nil {
				return res.X, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, lastErr
			}
		}
	}
	return nil, lastErr
}

// Drain administratively removes member id: its shard finishes queued
// work and closes admission (the /v1/handoff drain), the ring drops
// it, and its resident patterns re-factor onto the survivors from the
// registry. The process itself stays up, answering "draining" to
// probes, until its owner stops it.
func (f *Fleet) Drain(ctx context.Context, id int) error {
	if id < 0 || id >= len(f.members) {
		return fmt.Errorf("fleetrpc: no member %d", id)
	}
	mb := f.members[id]
	_, err := mb.cli.Handoff(ctx)
	if err != nil {
		return err
	}
	mb.markDead(time.Now())
	f.m.drains.Add(1)
	f.rebuildRing()
	f.rereplicateAsync()
	return nil
}

// Members snapshots every member's health state.
func (f *Fleet) Members() []MemberStatus {
	now := time.Now()
	out := make([]MemberStatus, 0, len(f.members))
	for _, mb := range f.members {
		out = append(out, mb.status(now))
	}
	return out
}

// Ring exposes the current placement ring (tests, status endpoints).
func (f *Fleet) Ring() *fleet.Ring { return f.ring.Load() }

// Stats snapshots the coordinator counters and membership.
func (f *Fleet) Stats() Stats {
	s := f.m.snapshot()
	s.HedgeStaked, s.HedgeDenied = f.hedge.Counts()
	s.Members = f.Members()
	return s
}
