package fleetrpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gesp/internal/fleet"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

// ErrNoLiveShards means every member is dead (or administratively
// drained) — there is nowhere to place a request right now. It is
// retryable: the prober revives members the moment they answer again.
var ErrNoLiveShards = errors.New("fleetrpc: no live shards")

// maxReplication caps a pattern's placement width, mirroring the
// in-process fleet: owner plus up to three replicas, so placement
// buffers stay on the stack.
const maxReplication = 4

// backoffSickCap bounds how many of a member's consecutive failures
// fold into the retry schedule: a member that has been failing for a
// while starts near the wait ceiling immediately, but the penalty is
// bounded — and it resets to zero on the member's first success, so a
// recovered shard's next transient error waits Base, not Max.
const backoffSickCap = 4

// Config parameterizes the cross-process coordinator.
type Config struct {
	// Addrs are the shard processes' host:port listen addresses. Member
	// ids are the indexes into this slice.
	Addrs []string
	// Replication is how many members hold each pattern (owner
	// included): every Submit lands on the owner and Replication-1 ring
	// successors, so a failover target already has the factors. <=0
	// takes 2; capped at maxReplication. PromotePattern widens a single
	// pattern beyond this at runtime (the SLO controller's knob).
	Replication int
	// VNodes is the consistent-hash points per member (fleet.DefaultVNodes
	// when <=0).
	VNodes int

	// ProbeInterval is the health-check period (50ms when <=0): every
	// member is probed concurrently each tick.
	ProbeInterval time.Duration
	// ProbeJitter widens each prober tick by up to ±this fraction of
	// ProbeInterval, so N coordinators started together do not
	// synchronize their probe bursts against the same shard. 0 takes
	// 0.2; negative disables jitter (tests that count exact ticks).
	ProbeJitter float64
	// ProbeTimeout bounds one /v1/health round trip (4x ProbeInterval
	// when <=0). A SIGSTOPped shard accepts the connection and then
	// hangs, so the timeout — not a refused connect — is what detects a
	// partitioned member.
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that moves a member
	// alive -> suspect (placement deprioritizes it); <=0 takes 1.
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that moves a suspect
	// member to dead (ring rebuild + re-replication); values <=
	// SuspectAfter take SuspectAfter+2.
	DeadAfter int

	// Retry is the per-request retry/backoff policy.
	Retry Backoff
	// RequestTimeout bounds one solve attempt on one placement (2s when
	// <=0) — the per-attempt slice of the overall deadline budget, which
	// the caller's context owns.
	RequestTimeout time.Duration
	// SubmitTimeout bounds one matrix submit (30s when <=0): a cold
	// submit runs analysis and numeric factorization, legitimately far
	// slower than any solve.
	SubmitTimeout time.Duration

	// HedgeAfter launches a budget-gated hedge to the first replica when
	// the primary hasn't answered within this duration. <=0 disables
	// hedging.
	HedgeAfter time.Duration
	// HedgeBudget/HedgeBurst parameterize the shared hedge token bucket
	// (see fleet.HedgeBudget); Budget<=0 leaves hedging unlimited.
	HedgeBudget float64
	HedgeBurst  float64

	// DegradedFallback, when set, answers a solve whose every placement
	// is down — after retries and healing have failed — by shipping the
	// registered matrix to any live member's /v1/degraded iterative
	// path. Slower and less accurate than the direct solve, but an
	// answer instead of an error.
	DegradedFallback bool

	// SeedRegistry pre-populates the wire-matrix registry. This is the
	// HA takeover path: a follower coordinator that wins an election
	// rebuilds its Fleet with the registry its leader streamed to it, so
	// every handle the old leader ever acked survives the failover. The
	// new coordinator re-replicates the seeded patterns in the
	// background at startup.
	SeedRegistry map[serve.Handle]MatrixRequest
	// DeadMembers are Addrs indexes to treat as dead from birth — the
	// previous leader's replicated membership view, so a failed-over
	// coordinator starts with the ring its predecessor was routing on
	// instead of rediscovering every death at a probe interval's cost.
	DeadMembers []int

	// Seed seeds the coordinator's jitter source (0 takes 1); fixed so
	// retry schedules reproduce in tests.
	Seed int64
}

// DefaultConfig is a coordinator tuned for LAN shards: 2x replication,
// fast probing, hedging after 100ms capped at 10% of traffic, and the
// degraded fallback on.
func DefaultConfig(addrs []string) Config {
	return Config{
		Addrs:            addrs,
		Replication:      2,
		ProbeInterval:    50 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        3,
		HedgeAfter:       100 * time.Millisecond,
		HedgeBudget:      0.1,
		HedgeBurst:       8,
		DegradedFallback: true,
	}
}

func (c *Config) fillDefaults() {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > maxReplication {
		c.Replication = maxReplication
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 50 * time.Millisecond
	}
	switch {
	case c.ProbeJitter == 0:
		c.ProbeJitter = 0.2
	case c.ProbeJitter < 0:
		c.ProbeJitter = 0
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 4 * c.ProbeInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	c.Retry = c.Retry.fill()
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.SubmitTimeout <= 0 {
		c.SubmitTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fleet is the cross-process coordinator: the consistent-hash router
// the in-process fleet pioneered, speaking the wire format to separate
// gesp-serve processes, with the layers a process boundary demands —
// health-checked membership, retry/backoff, a hedging budget, and
// degraded fallback. Safe for concurrent use.
type Fleet struct {
	cfg   Config
	hedge *fleet.HedgeBudget
	m     rpcMetrics
	// lat is the fleet-wide client-observed solve latency histogram;
	// windowed snapshots of it are the SLO controller's p999 signal.
	lat fleet.LatHist

	// members is the membership table, copy-on-write: AddMember swaps in
	// an extended copy so readers (prober, placement) iterate a
	// consistent snapshot without a lock. Member ids are indexes and
	// never change; existing *member values are shared between copies.
	members atomic.Pointer[[]*member]

	// ring is the current placement over non-dead member ids;
	// immutable, rebuilt and swapped atomically on every membership
	// change so the routing path takes no lock. ringGen counts swaps —
	// the generation the HA layer streams to follower coordinators.
	ring    atomic.Pointer[fleet.Ring]
	ringGen atomic.Uint64

	mu sync.Mutex
	// registry keeps every submitted system in wire form, encoded once:
	// the coordinator re-sends these bytes to heal evictions, to
	// re-replicate after a death, and to feed the degraded path.
	//gesp:guardedby:mu
	registry map[serve.Handle]MatrixRequest
	// replBoost widens a single pattern's placement beyond
	// cfg.Replication (pattern -> extra replicas) — the SLO controller's
	// promote/demote knob.
	//gesp:guardedby:mu
	replBoost map[uint64]int
	// popCount counts routed solves per pattern, feeding HotPatterns.
	//gesp:guardedby:mu
	popCount map[uint64]uint64
	// rng drives retry and probe jitter; seeded so schedules reproduce,
	// guarded because rand.Rand is not concurrency-safe.
	//gesp:guardedby:mu
	rng *rand.Rand

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New builds a coordinator over cfg.Addrs and starts its prober. It
// does not contact the shards — the first probe tick and the first
// request do; a shard that is still starting up just eats a few
// failures and revives on its first healthy probe.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("fleetrpc: no shard addresses")
	}
	cfg.fillDefaults()
	now := time.Now()
	f := &Fleet{
		cfg:       cfg,
		hedge:     fleet.NewHedgeBudget(cfg.HedgeBudget, cfg.HedgeBurst),
		registry:  make(map[serve.Handle]MatrixRequest),
		replBoost: make(map[uint64]int),
		popCount:  make(map[uint64]uint64),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		stop:      make(chan struct{}),
	}
	members := make([]*member, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		members[i] = newMember(i, addr, now)
	}
	for _, id := range cfg.DeadMembers {
		if id >= 0 && id < len(members) {
			members[id].markDead(now)
		}
	}
	f.members.Store(&members)
	//gesp:unordered — map copy into the registry; placement derives from each key alone
	for h, w := range cfg.SeedRegistry {
		f.registry[h] = w
	}
	f.rebuildRing()
	f.wg.Add(1)
	go f.prober()
	if len(f.registry) > 0 {
		// A takeover coordinator re-homes its inherited registry under
		// its own ring before traffic needs the factors; the shards'
		// caches make the duplicate submits lookups, not refactors.
		f.rereplicateAsync()
	}
	return f, nil
}

// Close stops the prober and pending re-replications. Shard processes
// are not touched — they belong to whoever started them.
func (f *Fleet) Close() {
	if !f.closed.CompareAndSwap(false, true) {
		return
	}
	close(f.stop)
	f.wg.Wait()
}

// memberList snapshots the copy-on-write membership table. Ids are
// stable indexes into the snapshot.
func (f *Fleet) memberList() []*member { return *f.members.Load() }

// AddMember grows the fleet with a new shard process at addr and
// returns its id. The ring rebuild places it immediately; the
// background re-replication then moves the patterns it now owns onto
// it. This is the SLO controller's scale-up knob.
func (f *Fleet) AddMember(addr string) (int, error) {
	if f.closed.Load() {
		return 0, serve.ErrClosed
	}
	f.mu.Lock()
	old := f.memberList()
	id := len(old)
	grown := make([]*member, id+1)
	copy(grown, old)
	grown[id] = newMember(id, addr, time.Now())
	f.members.Store(&grown)
	f.mu.Unlock()
	f.m.scaleUps.Add(1)
	f.rebuildRing()
	f.rereplicateAsync()
	return id, nil
}

// probeWait is the jittered pause before the next probe sweep: the
// configured interval widened by up to ±ProbeJitter of itself, drawn
// from the seeded source. Fleets of coordinators started in the same
// millisecond drift apart instead of stampeding every shard's health
// endpoint in lockstep.
func (f *Fleet) probeWait() time.Duration {
	if f.cfg.ProbeJitter == 0 {
		return f.cfg.ProbeInterval
	}
	f.mu.Lock()
	u := f.rng.Float64()
	f.mu.Unlock()
	return jitterInterval(f.cfg.ProbeInterval, f.cfg.ProbeJitter, u)
}

// jitterInterval spreads base over [base*(1-frac), base*(1+frac)] by
// the uniform draw u in [0,1).
func jitterInterval(base time.Duration, frac, u float64) time.Duration {
	return time.Duration(float64(base) * (1 + frac*(2*u-1)))
}

// prober walks every member each tick, concurrently: a wedged member
// must not delay the detection of the next one. Ticks are jittered
// (probeWait) so coordinator fleets desynchronize.
func (f *Fleet) prober() {
	defer f.wg.Done()
	t := time.NewTimer(f.probeWait())
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, mb := range f.memberList() {
				wg.Add(1)
				go func(mb *member) {
					defer wg.Done()
					f.probe(mb)
				}(mb)
			}
			wg.Wait()
			t.Reset(f.probeWait())
		}
	}
}

// probe runs one health check and feeds the membership state machine.
// A shard that answers but reports a non-ok status (draining) counts
// as down: it is leaving on purpose and must exit the ring.
func (f *Fleet) probe(mb *member) {
	f.m.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
	defer cancel()
	res, err := mb.cli.Health(ctx)
	if err == nil && res.Status != "ok" {
		err = fmt.Errorf("%w: %s: shard reports %q", ErrUnreachable, mb.addr, res.Status)
	}
	if err != nil {
		f.m.probeFails.Add(1)
		if mb.reportFailure(f.cfg.SuspectAfter, f.cfg.DeadAfter, time.Now()) {
			f.onDeath(mb)
		}
		return
	}
	mb.noteHealth(res)
	if mb.reviveOnProbe(time.Now()) {
		f.onRejoin(mb)
	}
}

// noteResult feeds one request outcome into the membership state
// machine. Only transport-level failures count against health — an
// HTTP error (even a 503) is a live process making a decision. Our own
// cancellation says nothing about the member. Resurrection of dead
// members is the prober's job alone: it is the only observer that can
// tell a restarted shard from a drained one still answering.
func (f *Fleet) noteResult(mb *member, err error) {
	now := time.Now()
	switch {
	case err == nil:
		mb.reportSuccess(now)
	case errors.Is(err, ErrUnreachable) || errors.Is(err, context.DeadlineExceeded):
		if mb.reportFailure(f.cfg.SuspectAfter, f.cfg.DeadAfter, now) {
			f.onDeath(mb)
		}
	case errors.Is(err, context.Canceled):
		// hedge loser or caller gave up; no health signal either way
	default:
		// a decoded HTTP response: the process is alive
		mb.reportSuccess(now)
	}
}

// onDeath and onRejoin handle the two ring-changing transitions:
// rebuild placement, then re-replicate the registry under the new ring
// so every pattern's factors exist at its (possibly new) owner and
// replicas before traffic needs them. A death also closes the pooled
// connections to the corpse — a long-running coordinator must not keep
// sockets to killed shards alive for the process's lifetime.
func (f *Fleet) onDeath(mb *member) {
	f.m.deaths.Add(1)
	mb.cli.CloseIdle()
	f.rebuildRing()
	f.rereplicateAsync()
}

func (f *Fleet) onRejoin(mb *member) {
	f.m.rejoins.Add(1)
	f.rebuildRing()
	f.rereplicateAsync()
}

// rebuildRing recomputes the ring over the non-dead members and swaps
// it in. Serialized under mu so a stale membership read cannot
// overwrite a newer ring.
func (f *Fleet) rebuildRing() {
	f.mu.Lock()
	defer f.mu.Unlock()
	members := f.memberList()
	ids := make([]int, 0, len(members))
	for _, mb := range members {
		if mb.currentState() != StateDead {
			ids = append(ids, mb.id)
		}
	}
	f.ring.Store(fleet.NewRing(ids, f.cfg.VNodes))
	f.ringGen.Add(1)
	f.m.rebuilds.Add(1)
}

// rereplicateAsync re-submits every registered matrix to its placement
// under the current ring, in the background: factors move to their
// new owners ahead of the traffic that will want them, and members
// already holding them answer from cache (the serve layer's factor
// cache makes a duplicate submit a lookup, not a refactorization).
func (f *Fleet) rereplicateAsync() {
	f.rereplicateWhere(func(uint64) bool { return true })
}

// rereplicateWhere re-homes the registered patterns selected by keep.
// The registry key already carries the pattern fingerprint
// (Handle.Key.Pattern), so selection costs no matrix assembly.
func (f *Fleet) rereplicateWhere(keep func(pattern uint64) bool) {
	if f.closed.Load() {
		return
	}
	type entry struct {
		pattern uint64
		wire    MatrixRequest
	}
	f.mu.Lock()
	entries := make([]entry, 0, len(f.registry))
	//gesp:unordered — each pattern re-homes independently; placement order is irrelevant
	for h, w := range f.registry {
		if keep(h.Key.Pattern) {
			entries = append(entries, entry{pattern: h.Key.Pattern, wire: w})
		}
	}
	f.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for _, e := range entries {
			select {
			case <-f.stop:
				return
			default:
			}
			var buf [maxReplication]*member
			n := f.placementInto(buf[:], e.pattern)
			for i := 0; i < n; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), f.cfg.SubmitTimeout)
				_, err := buf[i].cli.SubmitWire(ctx, e.wire)
				cancel()
				f.noteResult(buf[i], err)
				if err == nil {
					f.m.rereplicated.Add(1)
				}
			}
		}
	}()
}

// replWidth is a pattern's current placement width: the configured
// replication plus any controller boost, capped at maxReplication.
func (f *Fleet) replWidth(pattern uint64) int {
	w := f.cfg.Replication
	f.mu.Lock()
	w += f.replBoost[pattern]
	f.mu.Unlock()
	if w > maxReplication {
		w = maxReplication
	}
	return w
}

// PromotePattern widens pattern's placement by extra replicas (capped
// at maxReplication total) and re-factors it onto the new placement in
// the background. The SLO controller calls this when the tail breaches;
// it is idempotent at a given width.
func (f *Fleet) PromotePattern(pattern uint64, extra int) {
	if extra < 0 {
		extra = 0
	}
	f.mu.Lock()
	prev := f.replBoost[pattern]
	if extra == 0 {
		delete(f.replBoost, pattern)
	} else {
		f.replBoost[pattern] = extra
	}
	f.mu.Unlock()
	if extra > prev {
		f.m.promotions.Add(1)
		f.rereplicateWhere(func(p uint64) bool { return p == pattern })
	}
}

// DemotePattern restores pattern's placement to the configured
// replication. No data moves: the extra replicas simply stop being
// placed, and their cached factors age out of the shards' LRUs.
func (f *Fleet) DemotePattern(pattern uint64) {
	f.mu.Lock()
	_, had := f.replBoost[pattern]
	delete(f.replBoost, pattern)
	f.mu.Unlock()
	if had {
		f.m.demotions.Add(1)
	}
}

// Boosted lists the currently promoted patterns (ascending, for
// deterministic output).
func (f *Fleet) Boosted() []uint64 {
	f.mu.Lock()
	out := make([]uint64, 0, len(f.replBoost))
	//gesp:unordered — sorted below
	for p := range f.replBoost {
		out = append(out, p)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HotPatterns returns up to k patterns by routed-solve count,
// descending, ties broken by pattern value so the order is
// deterministic.
func (f *Fleet) HotPatterns(k int) []uint64 {
	type pc struct {
		p uint64
		c uint64
	}
	f.mu.Lock()
	all := make([]pc, 0, len(f.popCount))
	//gesp:unordered — sorted below
	for p, c := range f.popCount {
		all = append(all, pc{p, c})
	}
	f.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].p < all[j].p
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].p
	}
	return out
}

// placementInto writes the pattern's placement — healthiest first —
// into dst and returns how many entries it wrote. The ring (which
// excludes dead members) proposes owner + successors; alive members
// sort before suspects so a flapping shard serves only when nothing
// better holds the factors.
func (f *Fleet) placementInto(dst []*member, pattern uint64) int {
	ring := f.ring.Load()
	members := f.memberList()
	var ids [maxReplication]int
	rf := f.replWidth(pattern)
	n := ring.ReplicasInto(ids[:rf], pattern)
	k := 0
	for pass := 0; pass < 2; pass++ {
		want := StateAlive
		if pass == 1 {
			want = StateSuspect
		}
		for i := 0; i < n && k < len(dst); i++ {
			if mb := members[ids[i]]; mb.currentState() == want {
				dst[k] = mb
				k++
			}
		}
	}
	return k
}

// sleep pauses for the retry schedule's next wait (attempt counts
// retries, 0 = first retry), honoring the shard's Retry-After hint and
// the caller's context. sick is the failed member's consecutive-failure
// count: a member that has been failing for a while is charged extra
// schedule steps (capped at backoffSickCap) so retries against it back
// off to the ceiling quickly — and because the count resets on the
// member's first success, a recovered shard's next transient error
// starts the schedule from Base again.
func (f *Fleet) sleep(ctx context.Context, attempt, sick int, retryAfter time.Duration) error {
	f.mu.Lock()
	u := f.rng.Float64()
	f.mu.Unlock()
	if sick > backoffSickCap {
		sick = backoffSickCap
	}
	w := f.cfg.Retry.wait(attempt+sick, u, retryAfter)
	t := time.NewTimer(w)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit registers a system with the fleet: the matrix is encoded
// once, factored on its pattern's owner and replicas, and kept in the
// coordinator's registry for healing, re-replication, and the
// degraded path.
func (f *Fleet) Submit(a *sparse.CSC) (serve.Handle, error) {
	return f.SubmitCtx(context.Background(), a)
}

// SubmitCtx is Submit under a caller-owned context.
func (f *Fleet) SubmitCtx(ctx context.Context, a *sparse.CSC) (serve.Handle, error) {
	if f.closed.Load() {
		return serve.Handle{}, serve.ErrClosed
	}
	wire := WireMatrix(a)
	pattern := sparse.PatternHash(a)
	var lastErr error
	var lastSick int
	for attempt := 0; attempt < f.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			f.m.retries.Add(1)
			if err := f.sleep(ctx, attempt-1, lastSick, RetryAfterHint(lastErr)); err != nil {
				return serve.Handle{}, err
			}
		}
		var buf [maxReplication]*member
		n := f.placementInto(buf[:], pattern)
		if n == 0 {
			lastErr = ErrNoLiveShards
			lastSick = 0
			continue
		}
		sctx, cancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
		h, err := buf[0].cli.SubmitWire(sctx, wire)
		cancel()
		f.noteResult(buf[0], err)
		if err != nil {
			lastErr = err
			lastSick = buf[0].failureCount()
			if !Retryable(err) {
				return serve.Handle{}, err
			}
			continue
		}
		f.mu.Lock()
		f.registry[h] = wire
		f.mu.Unlock()
		for i := 1; i < n; i++ {
			rctx, rcancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
			_, rerr := buf[i].cli.SubmitWire(rctx, wire)
			rcancel()
			f.noteResult(buf[i], rerr)
			//gesp:errok — replica population is best-effort; the owner holds the factors and re-replication retries on the next membership change
			_ = rerr
		}
		return h, nil
	}
	return serve.Handle{}, lastErr
}

// Registry snapshots the wire-matrix registry — the state the HA layer
// replicates to follower coordinators so a takeover loses no handles.
func (f *Fleet) Registry() map[serve.Handle]MatrixRequest {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[serve.Handle]MatrixRequest, len(f.registry))
	//gesp:unordered — map copy; the replication layer tracks per-handle acks, not order
	for h, w := range f.registry {
		out[h] = w
	}
	return out
}

// RegistryLen is the number of registered systems.
func (f *Fleet) RegistryLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.registry)
}

// Solve routes one right-hand side with the background context.
func (f *Fleet) Solve(h serve.Handle, b []float64) ([]float64, error) {
	return f.SolveCtx(context.Background(), h, b)
}

// SolveCtx routes one right-hand side through the full resilience
// ladder: placement on the live ring, hedged against the first replica
// under the hedge budget, failed over on fast errors, retried with
// jittered backoff (honoring Retry-After) on retryable ones, healed by
// re-submit on eviction, and — when every placement is gone — answered
// by the degraded iterative path on any live member.
func (f *Fleet) SolveCtx(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	if f.closed.Load() {
		return nil, serve.ErrClosed
	}
	t0 := time.Now()
	f.m.routed.Add(1)
	f.mu.Lock()
	f.popCount[h.Key.Pattern]++
	f.mu.Unlock()
	f.hedge.Accrue()
	var lastErr error
	var lastSick int
	for attempt := 0; attempt < f.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			f.m.retries.Add(1)
			if err := f.sleep(ctx, attempt-1, lastSick, RetryAfterHint(lastErr)); err != nil {
				f.m.failed.Add(1)
				return nil, err
			}
		}
		var buf [maxReplication]*member
		n := f.placementInto(buf[:], h.Key.Pattern)
		if n == 0 {
			lastErr = ErrNoLiveShards
			lastSick = 0
			continue
		}
		primary := buf[0]
		var replica *member
		if n > 1 {
			replica = buf[1]
		}
		x, err := f.solvePlaced(ctx, primary, replica, h, b)
		if err == nil {
			f.lat.Observe(time.Since(t0))
			return x, nil
		}
		lastErr = err
		lastSick = primary.failureCount()
		switch {
		case Expired(err):
			// Factors evicted (or the shard restarted empty): re-factor
			// from the registry and go around — without burning the
			// request on an error the next attempt can cure.
			if herr := f.heal(ctx, h); herr != nil {
				f.m.failed.Add(1)
				return nil, err
			}
			f.m.resubmits.Add(1)
		case !Retryable(err):
			f.m.failed.Add(1)
			return nil, err
		}
	}
	if f.cfg.DegradedFallback {
		if x, derr := f.solveDegraded(ctx, h, b); derr == nil {
			f.m.degraded.Add(1)
			f.lat.Observe(time.Since(t0))
			return x, nil
		}
	}
	f.m.failed.Add(1)
	return nil, lastErr
}

// placedResult is one leg of a placed attempt.
type placedResult struct {
	x    []float64
	err  error
	from *member
}

// solvePlaced runs one attempt against a placement: the primary,
// raced after HedgeAfter by a budget-gated hedge to the replica, with
// an immediate failover to the replica when the primary fails fast
// with a retryable error. First success wins; the loser's wait is
// cancelled with the attempt context.
func (f *Fleet) solvePlaced(ctx context.Context, primary, replica *member, h serve.Handle, b []float64) ([]float64, error) {
	actx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
	defer cancel()
	ch := make(chan placedResult, 2)
	launch := func(mb *member) {
		x, err := mb.cli.Solve(actx, h, b)
		f.noteResult(mb, err)
		ch <- placedResult{x: x, err: err, from: mb}
	}
	go launch(primary)
	inFlight := 1
	hedged := false
	var hedgeC <-chan time.Time
	if replica != nil && f.cfg.HedgeAfter > 0 {
		t := time.NewTimer(f.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var primErr error
	for {
		select {
		case r := <-ch:
			inFlight--
			if r.err == nil {
				if hedged && r.from == replica {
					f.m.hedgeWins.Add(1)
				}
				return r.x, nil
			}
			if r.from == primary {
				primErr = r.err
				if replica != nil && inFlight == 0 && Retryable(r.err) && actx.Err() == nil {
					// primary failed fast and the replica was never tried:
					// fail over now, inside the same attempt — no backoff,
					// no hedge token.
					f.m.failovers.Add(1)
					hedgeC = nil
					go launch(replica)
					inFlight++
					continue
				}
			}
			if inFlight == 0 {
				if primErr != nil {
					// the primary's error is the one the retry ladder
					// classifies (overload, eviction, unreachable)
					return nil, primErr
				}
				return nil, r.err
			}
		case <-hedgeC:
			hedgeC = nil
			if f.hedge.TryStake() {
				f.m.hedged.Add(1)
				hedged = true
				go launch(replica)
				inFlight++
			}
		}
	}
}

// heal re-factors an evicted handle at its current owner from the
// registered wire matrix.
func (f *Fleet) heal(ctx context.Context, h serve.Handle) error {
	f.mu.Lock()
	wire, ok := f.registry[h]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleetrpc: handle %v has no registered matrix", h.Key)
	}
	var buf [maxReplication]*member
	n := f.placementInto(buf[:], h.Key.Pattern)
	if n == 0 {
		return ErrNoLiveShards
	}
	sctx, cancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
	defer cancel()
	_, err := buf[0].cli.SubmitWire(sctx, wire)
	f.noteResult(buf[0], err)
	return err
}

// solveDegraded is the bottom of the ladder: ship the registered
// matrix to any live member's iterative path. Tried healthiest-first
// over every member (placement no longer matters — there is no cache
// to hit).
func (f *Fleet) solveDegraded(ctx context.Context, h serve.Handle, b []float64) ([]float64, error) {
	f.mu.Lock()
	wire, ok := f.registry[h]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleetrpc: handle %v has no registered matrix", h.Key)
	}
	lastErr := error(ErrNoLiveShards)
	for pass := 0; pass < 2; pass++ {
		want := StateAlive
		if pass == 1 {
			want = StateSuspect
		}
		for _, mb := range f.memberList() {
			if mb.currentState() != want {
				continue
			}
			dctx, cancel := context.WithTimeout(ctx, f.cfg.SubmitTimeout)
			res, err := mb.cli.SolveDegraded(dctx, wire, b)
			cancel()
			f.noteResult(mb, err)
			if err == nil {
				return res.X, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, lastErr
			}
		}
	}
	return nil, lastErr
}

// Drain administratively removes member id: its shard finishes queued
// work and closes admission (the /v1/handoff drain), the ring drops
// it, and its resident patterns re-factor onto the survivors from the
// registry. The process itself stays up, answering "draining" to
// probes, until its owner stops it.
func (f *Fleet) Drain(ctx context.Context, id int) error {
	members := f.memberList()
	if id < 0 || id >= len(members) {
		return fmt.Errorf("fleetrpc: no member %d", id)
	}
	mb := members[id]
	_, err := mb.cli.Handoff(ctx)
	if err != nil {
		return err
	}
	mb.markDead(time.Now())
	mb.cli.CloseIdle()
	f.m.drains.Add(1)
	f.rebuildRing()
	f.rereplicateAsync()
	return nil
}

// Members snapshots every member's health state.
func (f *Fleet) Members() []MemberStatus {
	now := time.Now()
	members := f.memberList()
	out := make([]MemberStatus, 0, len(members))
	for _, mb := range members {
		out = append(out, mb.status(now))
	}
	return out
}

// Addrs lists every member's address, id order — dead ones included,
// so the HA layer can stream the full topology to followers.
func (f *Fleet) Addrs() []string {
	members := f.memberList()
	out := make([]string, len(members))
	for i, mb := range members {
		out[i] = mb.addr
	}
	return out
}

// DeadIDs lists the members currently dead or drained, ascending.
func (f *Fleet) DeadIDs() []int {
	var out []int
	for _, mb := range f.memberList() {
		if mb.currentState() == StateDead {
			out = append(out, mb.id)
		}
	}
	return out
}

// Ring exposes the current placement ring (tests, status endpoints).
func (f *Fleet) Ring() *fleet.Ring { return f.ring.Load() }

// RingGen counts ring swaps — the membership epoch the HA layer
// streams to follower coordinators.
func (f *Fleet) RingGen() uint64 { return f.ringGen.Load() }

// LatSnapshot copies the fleet-wide latency histogram; the SLO
// controller diffs consecutive snapshots into per-window quantiles.
func (f *Fleet) LatSnapshot() (counts [fleet.LatBuckets]uint64, total uint64) {
	return f.lat.Snapshot()
}

// MaxQueueDepth is the deepest per-member queue the prober has seen on
// its latest sweep — the SLO controller's congestion signal.
func (f *Fleet) MaxQueueDepth() int64 {
	var depth int64
	for _, mb := range f.memberList() {
		if d := mb.queueDepth(); d > depth {
			depth = d
		}
	}
	return depth
}

// Stats snapshots the coordinator counters and membership.
func (f *Fleet) Stats() Stats {
	s := f.m.snapshot()
	s.HedgeStaked, s.HedgeDenied = f.hedge.Counts()
	s.Members = f.Members()
	s.RingGen = f.ringGen.Load()
	f.mu.Lock()
	s.RegistryLen = len(f.registry)
	s.Promoted = len(f.replBoost)
	f.mu.Unlock()
	s.P50 = f.lat.Quantile(0.50)
	s.P99 = f.lat.Quantile(0.99)
	s.P999 = f.lat.Quantile(0.999)
	return s
}
