package fleetrpc

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// rpcMetrics is the coordinator's accounting, lock-free counters in
// the style of fleet.metrics.
type rpcMetrics struct {
	routed       atomic.Uint64
	retries      atomic.Uint64 // backoff-gated re-attempts of a whole request
	failovers    atomic.Uint64 // same-attempt replica tries after a fast primary error
	hedged       atomic.Uint64 // budget-granted hedge launches
	hedgeWins    atomic.Uint64 // hedges where the replica answered first
	resubmits    atomic.Uint64 // expired-handle heals from the registry
	degraded     atomic.Uint64 // solves answered by the iterative fallback
	failed       atomic.Uint64 // requests that exhausted the whole ladder
	probes       atomic.Uint64
	probeFails   atomic.Uint64
	deaths       atomic.Uint64
	rejoins      atomic.Uint64
	drains       atomic.Uint64
	rebuilds     atomic.Uint64 // ring swaps
	rereplicated atomic.Uint64 // successful re-home submits after membership changes
	promotions   atomic.Uint64 // pattern replication boosts (SLO controller)
	demotions    atomic.Uint64 // pattern boosts removed
	scaleUps     atomic.Uint64 // members added at runtime (AddMember)
}

// Stats is a point-in-time coordinator snapshot.
type Stats struct {
	Routed    uint64 `json:"routed"`
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	Hedged    uint64 `json:"hedged"`
	HedgeWins uint64 `json:"hedge_wins"`
	// HedgeStaked/HedgeDenied are the hedge budget's grant and denial
	// counts; zero when Config.HedgeBudget is unset.
	HedgeStaked  uint64 `json:"hedge_staked,omitempty"`
	HedgeDenied  uint64 `json:"hedge_denied,omitempty"`
	Resubmits    uint64 `json:"resubmits"`
	Degraded     uint64 `json:"degraded"`
	Failed       uint64 `json:"failed"`
	Probes       uint64 `json:"probes"`
	ProbeFails   uint64 `json:"probe_fails"`
	Deaths       uint64 `json:"deaths"`
	Rejoins      uint64 `json:"rejoins"`
	Drains       uint64 `json:"drains"`
	Rebuilds     uint64 `json:"rebuilds"`
	Rereplicated uint64 `json:"rereplicated"`
	Promotions   uint64 `json:"promotions"`
	Demotions    uint64 `json:"demotions"`
	ScaleUps     uint64 `json:"scale_ups"`

	// RingGen is the placement epoch (rebuild count); Promoted the
	// number of currently boosted patterns; RegistryLen the registered
	// systems. P50/P99/P999 are fleet-wide client-observed solve
	// latencies since startup (the SLO controller uses windowed deltas,
	// not these cumulative values).
	RingGen     uint64        `json:"ring_gen"`
	Promoted    int           `json:"promoted"`
	RegistryLen int           `json:"registry_len"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	P999        time.Duration `json:"p999_ns"`

	Members []MemberStatus `json:"members"`
}

func (m *rpcMetrics) snapshot() Stats {
	return Stats{
		Routed:       m.routed.Load(),
		Retries:      m.retries.Load(),
		Failovers:    m.failovers.Load(),
		Hedged:       m.hedged.Load(),
		HedgeWins:    m.hedgeWins.Load(),
		Resubmits:    m.resubmits.Load(),
		Degraded:     m.degraded.Load(),
		Failed:       m.failed.Load(),
		Probes:       m.probes.Load(),
		ProbeFails:   m.probeFails.Load(),
		Deaths:       m.deaths.Load(),
		Rejoins:      m.rejoins.Load(),
		Drains:       m.drains.Load(),
		Rebuilds:     m.rebuilds.Load(),
		Rereplicated: m.rereplicated.Load(),
		Promotions:   m.promotions.Load(),
		Demotions:    m.demotions.Load(),
		ScaleUps:     m.scaleUps.Load(),
	}
}

// HedgeRate returns hedged/routed, or 0 before any traffic.
func (s Stats) HedgeRate() float64 {
	if s.Routed == 0 {
		return 0
	}
	return float64(s.Hedged) / float64(s.Routed)
}

// String renders the coordinator summary plus one line per member.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "routed %d  retries %d  failovers %d  hedged %d (wins %d, budget-denied %d)  resubmits %d  degraded %d  failed %d\n",
		s.Routed, s.Retries, s.Failovers, s.Hedged, s.HedgeWins, s.HedgeDenied, s.Resubmits, s.Degraded, s.Failed)
	fmt.Fprintf(&b, "probes %d (%d failed)  deaths %d  rejoins %d  drains %d  ring rebuilds %d (gen %d)  re-replicated %d\n",
		s.Probes, s.ProbeFails, s.Deaths, s.Rejoins, s.Drains, s.Rebuilds, s.RingGen, s.Rereplicated)
	fmt.Fprintf(&b, "promotions %d  demotions %d  scale-ups %d  boosted %d  registry %d  p50 %v  p99 %v  p999 %v\n",
		s.Promotions, s.Demotions, s.ScaleUps, s.Promoted, s.RegistryLen, s.P50, s.P99, s.P999)
	for _, m := range s.Members {
		fmt.Fprintf(&b, "member %d %s [%s] failures %d queue %d\n", m.ID, m.Addr, m.State, m.Failures, m.QueueDepth)
	}
	return b.String()
}
