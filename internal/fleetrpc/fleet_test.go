package fleetrpc

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gesp/internal/matgen"
	"gesp/internal/serve"
	"gesp/internal/sparse"
)

const testScale = 0.25

type system struct {
	a    *sparse.CSC
	b    []float64
	want []float64
}

func testbedSystem(t testing.TB, name string, valueSeed int64) system {
	t.Helper()
	m, ok := matgen.Lookup(name)
	if !ok {
		t.Fatalf("testbed matrix %s missing", name)
	}
	a := m.Generate(testScale)
	if valueSeed != 0 {
		rng := rand.New(rand.NewSource(valueSeed))
		for k := range a.Val {
			a.Val[k] *= 1 + 0.1*rng.NormFloat64()
		}
	}
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = 1
	}
	b := make([]float64, a.Rows)
	a.MatVec(b, want)
	return system{a: a, b: b, want: want}
}

func checkSolution(t *testing.T, x, want []float64) {
	t.Helper()
	if e := sparse.RelErrInf(x, want); e > 2e-3 {
		t.Fatalf("solution error %g", e)
	}
}

// testShards starts n in-process shard servers (real HTTP over
// loopback, same Mux the child processes serve) and returns their
// addresses plus the underlying services for white-box assertions.
func testShards(t *testing.T, n int, cfg serve.Config) ([]string, []*serve.Service) {
	t.Helper()
	addrs := make([]string, n)
	svcs := make([]*serve.Service, n)
	for i := 0; i < n; i++ {
		svc := serve.New(cfg)
		ts := httptest.NewServer(NewServer(svc).Mux())
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
		svcs[i] = svc
	}
	return addrs, svcs
}

// quietConfig is a coordinator with every optional layer off: no
// hedging, no degraded fallback, slow probes that stay out of the
// test's way. Individual tests switch layers back on.
func quietConfig(addrs []string) Config {
	return Config{
		Addrs:         addrs,
		Replication:   1,
		ProbeInterval: time.Hour,
		SuspectAfter:  100000,
		Retry:         Backoff{Attempts: 2, Base: time.Millisecond, Max: 5 * time.Millisecond},
	}
}

func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// waitState polls until member id reaches the wanted state.
func waitState(t *testing.T, f *Fleet, id int, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, m := range f.Members() {
			if m.ID == id && m.State == want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("member %d never became %s; members: %+v", id, want, f.Members())
}

func TestSetRetryAfterCeil(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		SetRetryAfter(w, c.d)
		if got := w.Header().Get("Retry-After"); got != c.want {
			t.Errorf("SetRetryAfter(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestBackoffWait(t *testing.T) {
	b := Backoff{}.fill()
	if b.Attempts != 4 || b.Base != 25*time.Millisecond || b.Max != 400*time.Millisecond || b.Jitter != 0.5 {
		t.Fatalf("fill defaults: %+v", b)
	}
	if j := (Backoff{Jitter: -1}).fill().Jitter; j != 0 {
		t.Fatalf("negative Jitter must disable, got %g", j)
	}
	if w := b.wait(0, 0, 0); w != 25*time.Millisecond {
		t.Fatalf("first wait %v, want base", w)
	}
	if w := b.wait(3, 0, 0); w != 200*time.Millisecond {
		t.Fatalf("wait(3) %v, want 200ms", w)
	}
	if w := b.wait(10, 0, 0); w != 400*time.Millisecond {
		t.Fatalf("wait(10) %v, want the 400ms ceiling", w)
	}
	// Jitter widens by up to +50%.
	if w := b.wait(0, 0.999, 0); w <= 25*time.Millisecond || w > 38*time.Millisecond {
		t.Fatalf("jittered wait %v outside (25ms, 37.5ms]", w)
	}
	// A shard's Retry-After hint overrides a shorter computed wait.
	if w := b.wait(0, 0, 600*time.Millisecond); w != 600*time.Millisecond {
		t.Fatalf("Retry-After floor ignored: %v", w)
	}
}

// TestMemberLifecycle walks the alive -> suspect -> dead machine and
// checks the two revival paths: request successes recover suspects but
// never the dead; only a healthy probe resurrects.
func TestMemberLifecycle(t *testing.T) {
	now := time.Now()
	m := newMember(0, "127.0.0.1:1", now)
	if m.currentState() != StateAlive {
		t.Fatal("new member not alive")
	}
	if died := m.reportFailure(1, 3, now); died || m.currentState() != StateSuspect {
		t.Fatalf("after 1 failure: died=%v state=%v", died, m.currentState())
	}
	m.reportSuccess(now)
	if m.currentState() != StateAlive || m.status(now).Failures != 0 {
		t.Fatalf("success must recover a suspect: %+v", m.status(now))
	}
	m.reportFailure(1, 3, now)
	m.reportFailure(1, 3, now)
	if died := m.reportFailure(1, 3, now); !died || m.currentState() != StateDead {
		t.Fatalf("3rd failure: died=%v state=%v", died, m.currentState())
	}
	// Death fires exactly once.
	if m.reportFailure(1, 3, now) {
		t.Fatal("death reported twice")
	}
	// A drained shard still answers requests; successes must not
	// resurrect it.
	m.reportSuccess(now)
	if m.currentState() != StateDead {
		t.Fatal("request success revived a dead member")
	}
	if rejoined := m.reviveOnProbe(now); !rejoined || m.currentState() != StateAlive {
		t.Fatalf("probe revival: rejoined=%v state=%v", rejoined, m.currentState())
	}
	if m.reviveOnProbe(now) {
		t.Fatal("rejoin reported twice")
	}
	m.markDead(now)
	if m.currentState() != StateDead {
		t.Fatal("markDead did not kill")
	}
}

func TestErrorTaxonomy(t *testing.T) {
	if !Retryable(ErrUnreachable) || !Retryable(context.DeadlineExceeded) {
		t.Fatal("transport-class errors must be retryable")
	}
	for _, status := range []int{429, 502, 503, 504} {
		if !Retryable(&RemoteError{Status: status}) {
			t.Fatalf("status %d must be retryable", status)
		}
	}
	if Retryable(&RemoteError{Status: 400}) || Retryable(errors.New("boom")) {
		t.Fatal("terminal errors must not be retryable")
	}
	if !Expired(&RemoteError{Status: 410}) || Expired(&RemoteError{Status: 503}) {
		t.Fatal("only 410 means the handle expired")
	}
	if h := RetryAfterHint(&RemoteError{Status: 503, RetryAfter: time.Second}); h != time.Second {
		t.Fatalf("RetryAfterHint = %v", h)
	}
}

// TestFleetRoutingAndSolve: submits land on the ring owner's process,
// solves come back correct, and the accounting balances.
func TestFleetRoutingAndSolve(t *testing.T) {
	addrs, svcs := testShards(t, 3, serve.DefaultConfig())
	f := newTestFleet(t, quietConfig(addrs))

	names := []string{"SHERMAN4", "GEMAT11", "WEST2021"}
	for _, name := range names {
		sys := testbedSystem(t, name, 0)
		h, err := f.Submit(sys.a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x, err := f.Solve(h, sys.b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSolution(t, x, sys.want)
		owner := f.Ring().Owner(h.Key.Pattern)
		if svcs[owner].Stats().Submits == 0 {
			t.Fatalf("%s: owner shard %d never saw the submit", name, owner)
		}
	}
	st := f.Stats()
	if st.Routed != uint64(len(names)) || st.Failed != 0 {
		t.Fatalf("accounting: routed=%d failed=%d, want %d/0", st.Routed, st.Failed, len(names))
	}
}

// TestFleetFailoverOnShardDeath: with replication, losing the owner
// process mid-stream costs no request — traffic fails over to the
// replica while the prober declares the death and rebuilds the ring.
func TestFleetFailoverOnShardDeath(t *testing.T) {
	svcs := make([]*serve.Service, 3)
	servers := make([]*httptest.Server, 3)
	addrs := make([]string, 3)
	for i := range addrs {
		svcs[i] = serve.New(serve.DefaultConfig())
		servers[i] = httptest.NewServer(NewServer(svcs[i]).Mux())
		addrs[i] = strings.TrimPrefix(servers[i].URL, "http://")
	}
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	cfg := quietConfig(addrs)
	cfg.Replication = 2
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.SuspectAfter = 1
	cfg.DeadAfter = 3
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.Retry = Backoff{Attempts: 4, Base: time.Millisecond, Max: 10 * time.Millisecond}
	f := newTestFleet(t, cfg)

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.Ring().Owner(h.Key.Pattern)
	servers[owner].Close() // SIGKILL stand-in: connections now refuse

	// Every solve across the death must succeed.
	for i := 0; i < 5; i++ {
		x, serr := f.Solve(h, sys.b)
		if serr != nil {
			t.Fatalf("solve %d across shard death: %v", i, serr)
		}
		checkSolution(t, x, sys.want)
	}
	waitState(t, f, owner, "dead", 2*time.Second)
	for _, id := range f.Ring().Shards() {
		if id == owner {
			t.Fatal("dead member still on the ring")
		}
	}
	st := f.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d client-visible failures across a replicated death", st.Failed)
	}
	if st.Deaths != 1 || st.Rebuilds == 0 {
		t.Fatalf("membership accounting: deaths=%d rebuilds=%d", st.Deaths, st.Rebuilds)
	}
}

// TestFleetHedgeBudgetDenied: an aggressive hedge trigger against a
// nearly-empty budget gets denials, not doubled load — and every solve
// still answers.
func TestFleetHedgeBudgetDenied(t *testing.T) {
	addrs, _ := testShards(t, 3, serve.DefaultConfig())
	cfg := quietConfig(addrs)
	cfg.Replication = 2
	cfg.HedgeAfter = time.Nanosecond // hedge every solve the budget allows
	cfg.HedgeBudget = 1e-6           // ~no refill within the test
	cfg.HedgeBurst = 2
	f := newTestFleet(t, cfg)

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		x, serr := f.Solve(h, sys.b)
		if serr != nil {
			t.Fatalf("solve %d: %v", i, serr)
		}
		checkSolution(t, x, sys.want)
	}
	st := f.Stats()
	if st.HedgeStaked > 2 {
		t.Fatalf("budget of 2 granted %d hedges", st.HedgeStaked)
	}
	if st.HedgeDenied == 0 {
		t.Fatalf("dry budget never denied a hedge: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("%d failures — a denied hedge must fall back to the unhedged path", st.Failed)
	}
}

// TestFleetDegradedFallback: with every placement down and retries
// exhausted, the coordinator ships the registered matrix to a live
// shard's iterative path instead of failing the request.
func TestFleetDegradedFallback(t *testing.T) {
	svcs := make([]*serve.Service, 2)
	servers := make([]*httptest.Server, 2)
	addrs := make([]string, 2)
	for i := range addrs {
		svcs[i] = serve.New(serve.DefaultConfig())
		servers[i] = httptest.NewServer(NewServer(svcs[i]).Mux())
		addrs[i] = strings.TrimPrefix(servers[i].URL, "http://")
	}
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	cfg := quietConfig(addrs) // prober effectively off: the owner stays "alive"
	cfg.Replication = 1
	cfg.DegradedFallback = true
	cfg.RequestTimeout = 200 * time.Millisecond
	cfg.Retry = Backoff{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}
	f := newTestFleet(t, cfg)

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.Ring().Owner(h.Key.Pattern)
	servers[owner].Close() // sole placement gone; membership hasn't noticed

	x, err := f.Solve(h, sys.b)
	if err != nil {
		t.Fatalf("degraded fallback must answer: %v", err)
	}
	checkSolution(t, x, sys.want)
	st := f.Stats()
	if st.Degraded != 1 || st.Failed != 0 {
		t.Fatalf("degraded accounting: degraded=%d failed=%d", st.Degraded, st.Failed)
	}
}

// TestFleetEvictionHeal: a shard that evicted its factors answers 410
// Gone; the coordinator re-submits from its wire registry and retries
// instead of surfacing the expiry.
func TestFleetEvictionHeal(t *testing.T) {
	cfg := serve.DefaultConfig()
	cfg.MaxFactors = 1
	addrs, _ := testShards(t, 1, cfg)
	f := newTestFleet(t, quietConfig(addrs))

	sysA := testbedSystem(t, "SHERMAN4", 0)
	sysB := testbedSystem(t, "GEMAT11", 0)
	hA, err := f.Submit(sysA.a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(sysB.a); err != nil { // evicts A's factors
		t.Fatal(err)
	}
	x, err := f.Solve(hA, sysA.b)
	if err != nil {
		t.Fatalf("evicted handle must heal, got %v", err)
	}
	checkSolution(t, x, sysA.want)
	if f.Stats().Resubmits == 0 {
		t.Fatal("heal never counted a resubmit")
	}
}

// TestFleetDrainStaysDead: a drained shard keeps answering HTTP, so
// only the prober — which can read the "draining" health status — must
// decide it never rejoins the ring.
func TestFleetDrainStaysDead(t *testing.T) {
	addrs, _ := testShards(t, 3, serve.DefaultConfig())
	cfg := quietConfig(addrs)
	cfg.Replication = 2
	cfg.ProbeInterval = 5 * time.Millisecond
	f := newTestFleet(t, cfg)

	sys := testbedSystem(t, "SHERMAN4", 0)
	h, err := f.Submit(sys.a)
	if err != nil {
		t.Fatal(err)
	}
	target := f.Ring().Owner(h.Key.Pattern)
	if err := f.Drain(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	// Many probe intervals later the drained member must still be dead
	// and off the ring — its health endpoint answers, but "draining".
	time.Sleep(50 * time.Millisecond)
	for _, m := range f.Members() {
		if m.ID == target && m.State != "dead" {
			t.Fatalf("drained member revived to %s", m.State)
		}
	}
	for _, id := range f.Ring().Shards() {
		if id == target {
			t.Fatal("drained member back on the ring")
		}
	}
	// The drained shard's patterns still solve on the survivors.
	x, err := f.Solve(h, sys.b)
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, x, sys.want)
	if st := f.Stats(); st.Drains != 1 || st.Failed != 0 {
		t.Fatalf("drain accounting: drains=%d failed=%d", st.Drains, st.Failed)
	}
}
