GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrent engines: the DAG-scheduled shared-memory
# factorization and the level-scheduled triangular solves.
race:
	$(GO) test -race -short ./internal/sched/... ./internal/lu/...

# The full pre-commit gate: static checks, build, the complete test
# suite, and the race detector over the concurrent packages.
verify: vet build test race

bench:
	$(GO) test -bench=. -benchmem .
