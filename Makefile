GO ?= go

.PHONY: build test vet lint race checktest verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the gesp-lint suite (detclock,
# hotalloc, mapiter, floatcmp) over the whole module. See DESIGN.md
# "Static analysis & checked builds".
lint:
	$(GO) run ./cmd/gesp-lint ./...

# Race-check the concurrent engines: the DAG-scheduled shared-memory
# factorization, the level-scheduled triangular solves, the simulated
# MPI runtime, and the distributed engine built on it.
race:
	$(GO) test -race -short ./internal/sched/... ./internal/lu/... ./internal/mpisim/... ./internal/dist/...

# Checked build: rerun the test suite with the gespcheck tag, which
# re-validates every structural invariant (CSC columns, supernode
# partitions, etree consistency, task-DAG acyclicity and dependency
# counters) at the pipeline's phase boundaries.
checktest:
	$(GO) test -tags gespcheck ./internal/...

# The full pre-commit gate: static checks, build, the complete test
# suite, the race detector over the concurrent packages, and the
# invariant-checked build.
verify: vet lint build test race checktest

bench:
	$(GO) test -bench=. -benchmem .
