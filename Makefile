GO ?= go

.PHONY: build test vet lint race checktest chaostest fleetchaos hachaos servebench fleetbench faultbench perfsmoke verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the gesp-lint suite (detclock,
# hotalloc, mapiter, floatcmp) over the whole module. See DESIGN.md
# "Static analysis & checked builds".
lint:
	$(GO) run ./cmd/gesp-lint ./...

# Race-check the concurrent engines: the DAG-scheduled shared-memory
# factorization, the level-scheduled triangular solves, the simulated
# MPI runtime, the distributed engine built on it, the caching,
# batching solve service, the sharded fleet router above it, and the
# shared micro-kernels (read-only operand concurrency).
race:
	$(GO) test -race -short ./internal/sched/... ./internal/lu/... ./internal/mpisim/... ./internal/dist/... ./internal/serve/... ./internal/fleet/... ./internal/fleetrpc/... ./internal/fleetha/... ./internal/kernels/...

# Checked build: rerun the test suite with the gespcheck tag, which
# re-validates every structural invariant (CSC columns, supernode
# partitions, etree consistency, task-DAG acyclicity and dependency
# counters) at the pipeline's phase boundaries.
checktest:
	$(GO) test -tags gespcheck ./internal/...

# Fault drill: the deterministic fault-injection suite (faultsim), the
# resilience ladder's rung-by-rung recovery tests, the laddered core
# integration, the serve-layer chaos tests, and the distributed chaos
# suite (chaos-injected mpisim watchdog + checkpoint/restart
# factorization) — all under the race detector with the gespcheck
# invariants on, so an escalation that corrupts structure, races the
# batcher, or breaks deterministic recovery fails loudly.
chaostest:
	$(GO) test -race -tags gespcheck ./internal/faultsim/... ./internal/resilience/... ./internal/core/... ./internal/serve/... ./internal/mpisim/... ./internal/dist/...

# Process-kill chaos: the cross-process fleet under real SIGKILL and
# SIGSTOP — the re-exec'd shard processes, health-checked membership,
# retry/hedge failover, and the prober-only rejoin path — plus a short
# run of the fleetproc ablation so the end-to-end chaos pipeline
# (spawn, load, kill, detect, report) stays wired. These tests skip
# themselves under -short, which is why `make race` does not cover
# them.
fleetchaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestSpawnAndKill' ./internal/fleetrpc/ ./internal/faultsim/
	$(GO) run ./cmd/gesp-bench -exp fleetproc -fleet-workers 4 -fleet-duration 500ms -scale 0.2

# Coordinator-HA chaos: the replicated control plane under real
# SIGKILL — leader election, fenced replication, registry takeover,
# the redirect-following client — and the SLO controller's
# promote/demote convergence against an injected straggler, plus a
# short run of the ha ablation so the end-to-end pipeline (spawn
# coordinators, elect, kill, fail over, report) stays wired. Skips
# under -short, like fleetchaos.
hachaos:
	$(GO) test -race -count=1 -run 'TestHA' ./internal/fleetha/
	$(GO) run ./cmd/gesp-bench -exp ha -fleet-workers 4 -fleet-duration 800ms -scale 0.2

# Serving-layer smoke: one short closed-loop throughput measurement
# plus a single-iteration run of the serve benchmark. Catches wiring
# breakage in cmd/gesp-serve and the experiment harness without the
# cost of a full benchmark sweep.
servebench:
	$(GO) run ./cmd/gesp-serve -load -clients 8 -duration 300ms -patterns 2 -variants 3 -scale 0.25
	$(GO) test -run - -bench BenchmarkServeThroughput -benchtime 1x .

# Fleet-layer smoke: one short closed-loop run through the sharded
# router (replication, hedging, and a mid-run drain all exercised) plus
# a single-iteration run of the fleet benchmarks. Catches wiring
# breakage in cmd/gesp-fleet and the fleet experiment harness.
fleetbench:
	$(GO) run ./cmd/gesp-fleet -load -workers 8 -duration 300ms -patterns 3 -variants 3 -scale 0.25 -drain-mid
	$(GO) test -run - -bench 'BenchmarkRing|BenchmarkFleet' -benchtime 1x ./internal/fleet/

# Distributed fault-tolerance smoke: run the recovery-overhead table at
# reduced scale. Fails if any injected fault (kill, stall, dropped
# message) is not recovered with bit-identical factors.
faultbench:
	$(GO) run ./cmd/gesp-bench -exp faults -scale 0.25

# Perf-gate smoke: regenerate the bench file quickly (1 rep, no
# min-time floor) and diff it against the committed baseline
# BENCH_0.json. Machine-independent gating only (-allocs-only): a CI
# runner's ns/op is not comparable to the baseline machine's, but an
# allocs/op increase on a //gesp:hotpath entry is a regression
# anywhere. Full same-machine ns/op gating: make bench (fresh
# BENCH_N.json) + gesp-perfdiff old new.
perfsmoke:
	$(GO) run ./cmd/gesp-benchdump -quick -o BENCH_head.json
	$(GO) run ./cmd/gesp-perfdiff -allocs-only BENCH_0.json BENCH_head.json

# The full pre-commit gate: static checks, build, the complete test
# suite, the race detector over the concurrent packages, the
# invariant-checked build, the fault drill, the process-kill chaos
# drill, the serving-layer smoke, the fault-recovery smoke, and the
# perf-gate smoke.
verify: vet lint build test race checktest chaostest fleetchaos hachaos servebench fleetbench faultbench perfsmoke

# Full benchmark sweep: every package's Go benchmarks, then the
# schema-versioned bench file (ns/op, allocs/op, Mflops per kernel and
# engine) the perf gate diffs against. Regenerates BENCH_0.json in
# place; commit the refresh when intentionally re-baselining.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/gesp-benchdump -o BENCH_0.json
