GO ?= go

.PHONY: build test vet lint race checktest chaostest servebench faultbench verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the gesp-lint suite (detclock,
# hotalloc, mapiter, floatcmp) over the whole module. See DESIGN.md
# "Static analysis & checked builds".
lint:
	$(GO) run ./cmd/gesp-lint ./...

# Race-check the concurrent engines: the DAG-scheduled shared-memory
# factorization, the level-scheduled triangular solves, the simulated
# MPI runtime, the distributed engine built on it, and the caching,
# batching solve service.
race:
	$(GO) test -race -short ./internal/sched/... ./internal/lu/... ./internal/mpisim/... ./internal/dist/... ./internal/serve/...

# Checked build: rerun the test suite with the gespcheck tag, which
# re-validates every structural invariant (CSC columns, supernode
# partitions, etree consistency, task-DAG acyclicity and dependency
# counters) at the pipeline's phase boundaries.
checktest:
	$(GO) test -tags gespcheck ./internal/...

# Fault drill: the deterministic fault-injection suite (faultsim), the
# resilience ladder's rung-by-rung recovery tests, the laddered core
# integration, the serve-layer chaos tests, and the distributed chaos
# suite (chaos-injected mpisim watchdog + checkpoint/restart
# factorization) — all under the race detector with the gespcheck
# invariants on, so an escalation that corrupts structure, races the
# batcher, or breaks deterministic recovery fails loudly.
chaostest:
	$(GO) test -race -tags gespcheck ./internal/faultsim/... ./internal/resilience/... ./internal/core/... ./internal/serve/... ./internal/mpisim/... ./internal/dist/...

# Serving-layer smoke: one short closed-loop throughput measurement
# plus a single-iteration run of the serve benchmark. Catches wiring
# breakage in cmd/gesp-serve and the experiment harness without the
# cost of a full benchmark sweep.
servebench:
	$(GO) run ./cmd/gesp-serve -load -clients 8 -duration 300ms -patterns 2 -variants 3 -scale 0.25
	$(GO) test -run - -bench BenchmarkServeThroughput -benchtime 1x .

# Distributed fault-tolerance smoke: run the recovery-overhead table at
# reduced scale. Fails if any injected fault (kill, stall, dropped
# message) is not recovered with bit-identical factors.
faultbench:
	$(GO) run ./cmd/gesp-bench -exp faults -scale 0.25

# The full pre-commit gate: static checks, build, the complete test
# suite, the race detector over the concurrent packages, the
# invariant-checked build, the fault drill, the serving-layer smoke,
# and the fault-recovery smoke.
verify: vet lint build test race checktest chaostest servebench faultbench

bench:
	$(GO) test -bench=. -benchmem .
